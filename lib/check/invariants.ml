module Net = Rr_wdm.Network
module Conv = Rr_wdm.Conversion
module Slp = Rr_wdm.Semilightpath
module Bitset = Rr_util.Bitset
module Rng = Rr_util.Rng
module RR = Robust_routing
module Router = RR.Router
module Types = RR.Types
module Batch = RR.Batch

let eps = 1e-6

let close a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs a +. Float.abs b)

let fail fmt = Printf.ksprintf (fun m -> Some m) fmt

let ( let* ) o k = match o with Some _ as s -> s | None -> k ()

(* ------------------------------------------------------------------ *)
(* Building blocks                                                      *)

let min_incident_weight net =
  let n = Net.n_nodes net in
  let best = Array.make n infinity in
  for e = 0 to Net.n_links net - 1 do
    let w =
      Bitset.fold (fun l acc -> Float.min acc (Net.weight net e l)) (Net.lambdas net e)
        infinity
    in
    let touch v = if w < best.(v) then best.(v) <- w in
    touch (Net.link_src net e);
    touch (Net.link_dst net e)
  done;
  best

let premise_theorem2 net =
  let best = min_incident_weight net in
  let ok = ref true in
  let w = Net.n_wavelengths net in
  for v = 0 to Net.n_nodes net - 1 do
    if best.(v) < infinity then
      if Conv.max_cost (Net.converter net v) ~n_wavelengths:w > best.(v) +. 1e-9 then
        ok := false
  done;
  !ok

let node_simple net (p : Slp.t) =
  match p.hops with
  | [] -> true
  | first :: _ ->
    let seen = Hashtbl.create 8 in
    let ok = ref true in
    Hashtbl.replace seen (Net.link_src net first.Slp.edge) ();
    List.iter
      (fun h ->
        let v = Net.link_dst net h.Slp.edge in
        if Hashtbl.mem seen v then ok := false else Hashtbl.replace seen v ())
      p.hops;
    !ok

(* Independent Eq. (1) re-accounting: weights plus conversion costs, summed
   by hand off the raw converter specs. *)
let manual_cost net (p : Slp.t) =
  let rec go = function
    | [] -> Ok 0.0
    | [ h ] -> Ok (Net.weight net h.Slp.edge h.Slp.lambda)
    | h1 :: (h2 :: _ as rest) -> (
      let v = Net.link_dst net h1.Slp.edge in
      match Conv.cost (Net.converter net v) h1.Slp.lambda h2.Slp.lambda with
      | None ->
        Error
          (Printf.sprintf "disallowed conversion %d->%d at node %d" h1.Slp.lambda
             h2.Slp.lambda v)
      | Some c -> (
        match go rest with
        | Ok tail -> Ok (Net.weight net h1.Slp.edge h1.Slp.lambda +. c +. tail)
        | Error _ as e -> e))
  in
  go p.hops

let protected_policy = function Router.Unprotected -> false | _ -> true

let paths_of sol =
  sol.Types.primary :: (match sol.Types.backup with Some b -> [ b ] | None -> [])

(* ------------------------------------------------------------------ *)
(* Routed-pair invariant suite                                          *)

let check_path_invariants net (p : Slp.t) =
  let* () = (if p.hops = [] then fail "empty semilightpath" else None) in
  let* () =
     if not (Slp.link_simple p) then fail "path repeats a physical link" else None
  in
  (* Switch settings: every conversion the path implies must be allowed and
     priced at the node where it happens. *)
  let* () =
     List.fold_left
       (fun acc (v, li, lo) ->
         match acc with
         | Some _ -> acc
         | None ->
           let spec = Net.converter net v in
           if not (Conv.allowed spec li lo) then
             fail "switch setting %d: %d->%d not allowed by converter" v li lo
           else if Conv.cost spec li lo = None then
             fail "switch setting %d: %d->%d has no cost" v li lo
           else None)
       None
       (Slp.conversions net p)
  in
  (* Eq. (1): library accounting vs independent recomputation. *)
  match manual_cost net p with
  | Error m -> Some m
  | Ok expected ->
    let c = try Ok (Slp.cost net p) with Invalid_argument m -> Error m in
    (match c with
     | Error m -> fail "Semilightpath.cost raised: %s" m
     | Ok c ->
       let* () =
          if not (close c expected) then
            fail "Eq.1 mismatch: cost %.9g, recomputed %.9g" c expected
          else None
       in
       let parts = Slp.traversal_cost net p +. Slp.conversion_cost net p in
       if not (close c parts) then
         fail "Eq.1 split mismatch: cost %.9g, traversal+conversion %.9g" c parts
       else None)

let check_load_accounting net sol =
  let net = Net.copy net in
  let m = Net.n_links net in
  let before = Array.init m (fun e -> Bitset.cardinal (Net.used net e)) in
  let before_total = Net.total_in_use net in
  match (try Ok (Types.allocate net sol) with Invalid_argument msg -> Error msg) with
  | Error msg -> fail "allocate rejected routed solution: %s" msg
  | Ok () ->
    let hops = List.concat_map (fun p -> p.Slp.hops) (paths_of sol) in
    let per_link = Array.make m 0 in
    List.iter (fun h -> per_link.(h.Slp.edge) <- per_link.(h.Slp.edge) + 1) hops;
    let err = ref None in
    let expected_rho = ref 0.0 in
    for e = 0 to m - 1 do
      let used = Bitset.cardinal (Net.used net e) in
      if used <> before.(e) + per_link.(e) && !err = None then
        err :=
          fail "Eq.2 usage mismatch on link %d: %d used, expected %d" e used
            (before.(e) + per_link.(e));
      let rho_e =
        float_of_int used /. float_of_int (Bitset.cardinal (Net.lambdas net e))
      in
      expected_rho := Float.max !expected_rho rho_e;
      if (not (close (Net.link_load net e) rho_e)) && !err = None then
        err := fail "Eq.2 link load mismatch on %d: %.9g vs %.9g" e (Net.link_load net e) rho_e
    done;
    let* () = !err in
    let* () =
       if not (close (Net.network_load net) !expected_rho) then
         fail "Eq.2 network load mismatch: %.9g vs recomputed %.9g"
           (Net.network_load net) !expected_rho
       else None
    in
    let* () =
       if Net.total_in_use net <> before_total + List.length hops then
         fail "Eq.2 total_in_use mismatch after allocate"
       else None
    in
    Types.release net sol;
    if Net.total_in_use net <> before_total then
      fail "allocate/release cycle leaks usage (%d vs %d)" (Net.total_in_use net)
        before_total
    else None

let check_solution net ~policy ~source ~target sol =
  let req = { Types.src = source; dst = target } in
  let* () =
     match Types.validate net req sol with
     | Ok () -> None
     | Error m -> fail "validate: %s" m
  in
  let* () =
     if protected_policy policy && sol.Types.backup = None then
       fail "protected policy %s returned no backup" (Router.policy_name policy)
     else None
  in
  let* () =
     match sol.Types.backup with
     | Some b when not (Slp.edge_disjoint sol.Types.primary b) ->
       fail "primary and backup share a physical link"
     | _ -> None
  in
  let* () =
     List.fold_left
       (fun acc p -> match acc with Some _ -> acc | None -> check_path_invariants net p)
       None (paths_of sol)
  in
  check_load_accounting net sol

let check_routed_pair inst =
  let net = Instance.network inst in
  let policy = inst.Instance.policy in
  match Router.route net policy ~source:inst.source ~target:inst.target with
  | None -> None (* feasibility is the oracles' business *)
  | Some sol -> check_solution net ~policy ~source:inst.source ~target:inst.target sol

(* ------------------------------------------------------------------ *)
(* Oracle cross-checks                                                  *)

let all_full net =
  let ok = ref true in
  for v = 0 to Net.n_nodes net - 1 do
    match Net.converter net v with Conv.Full _ -> () | _ -> ok := false
  done;
  !ok

let check_oracles inst =
  let net = Instance.network inst in
  if Net.n_nodes net > 8 || Net.n_links net > 26 then None
  else begin
    let source = inst.Instance.source and target = inst.Instance.target in
    let approx = Router.route net Router.Cost_approx ~source ~target in
    match RR.Exact.route ~max_paths:8_000 net ~source ~target with
    | exception RR.Exact.Budget_exceeded -> None
    | None -> (
      match approx with
      | None -> None
      | Some sol ->
        (* The exact solver enumerates node-simple pairs; the approximation
           may legitimately return a non-node-simple pair that has no
           node-simple counterpart under restricted converters. *)
        if
          node_simple net sol.Types.primary
          && (match sol.Types.backup with Some b -> node_simple net b | None -> false)
        then fail "Exact found no pair but approximation's pair is node-simple"
        else None)
    | Some (exact_sol, opt) -> (
      let* () =
         match Types.validate net { Types.src = source; dst = target } exact_sol with
         | Ok () -> None
         | Error m -> fail "Exact oracle emitted invalid solution: %s" m
      in
      let* () =
         if not (close (Types.total_cost net exact_sol) opt) then
           fail "Exact cost %.9g disagrees with its own solution %.9g" opt
             (Types.total_cost net exact_sol)
         else None
      in
      match approx with
      | None ->
        if all_full net then
          fail "approximation found nothing but Exact found cost %.9g under full conversion" opt
        else None
      | Some sol ->
        let cost = Types.total_cost net sol in
        let* () =
           if premise_theorem2 net && cost > (2.0 *. opt) +. eps *. (1.0 +. opt) then
             fail "Theorem 2 violated: approx %.9g > 2 x optimal %.9g" cost opt
           else None
        in
        if
          node_simple net sol.Types.primary
          && (match sol.Types.backup with Some b -> node_simple net b | None -> true)
          && opt > cost +. (eps *. (1.0 +. cost))
        then fail "Exact %.9g worse than a node-simple approximation %.9g" opt cost
        else None)
  end

let check_ilp inst =
  let net = Instance.network inst in
  if Net.n_nodes net > 5 || Net.n_links net > 12 || Net.n_wavelengths net > 2 then None
  else begin
    let source = inst.Instance.source and target = inst.Instance.target in
    let vars, _ = RR.Ilp_exact.model_size net ~source ~target in
    if vars > 90 then None
    else
      match RR.Exact.route ~max_paths:4_000 net ~source ~target with
      | exception RR.Exact.Budget_exceeded -> None
      | exact -> (
        match RR.Ilp_exact.route ~node_limit:600 net ~source ~target with
        | exception Failure _ -> None (* node budget exhausted *)
        | ilp -> (
          match (exact, ilp) with
          | None, None -> None
          | Some (_, opt), None ->
            fail "ILP infeasible but Exact found cost %.9g" opt
          | None, Some (_, obj) ->
            fail "Exact infeasible but ILP found cost %.9g" obj
          | Some (_, opt), Some (ilp_sol, obj) ->
            let* () =
               match
                 Types.validate net { Types.src = source; dst = target } ilp_sol
               with
               | Ok () -> None
               | Error m -> fail "ILP oracle emitted invalid solution: %s" m
            in
            if not (close opt obj) then
              fail "oracle disagreement: Exact %.9g vs ILP %.9g" opt obj
            else None))
  end

(* ------------------------------------------------------------------ *)
(* Metamorphic properties                                               *)

let scale_spec k = function
  | Conv.No_conversion -> Conv.No_conversion
  | Conv.Full c -> Conv.Full (k *. c)
  | Conv.Range (r, c) -> Conv.Range (r, k *. c)
  | Conv.Table _ -> assert false

let check_weight_scale inst =
  let k = 2.0 in
  let scaled =
    {
      inst with
      Instance.links =
        Array.map
          (fun l -> { l with Instance.l_weight = k *. l.Instance.l_weight })
          inst.Instance.links;
      converters = Array.map (scale_spec k) inst.Instance.converters;
    }
  in
  let net1 = Instance.network inst and net2 = Instance.network scaled in
  let policy = inst.Instance.policy in
  let r1 = Router.route net1 policy ~source:inst.source ~target:inst.target in
  let r2 = Router.route net2 policy ~source:inst.source ~target:inst.target in
  match (r1, r2) with
  | None, None -> None
  | Some _, None -> fail "route vanished after uniform x%g weight scaling" k
  | None, Some _ -> fail "route appeared after uniform x%g weight scaling" k
  | Some s1, Some s2 ->
    let hops p = List.map (fun h -> (h.Slp.edge, h.Slp.lambda)) p.Slp.hops in
    let shape s =
      (hops s.Types.primary, Option.map hops s.Types.backup)
    in
    let* () =
       if shape s1 <> shape s2 then
         fail "routed hops changed under uniform x%g weight scaling" k
       else None
    in
    let c1 = Types.total_cost net1 s1 and c2 = Types.total_cost net2 s2 in
    if Float.abs (c2 -. (k *. c1)) > 1e-9 *. (1.0 +. c2) then
      fail "cost does not scale: %.12g vs %g x %.12g" c2 k c1
    else None

(* Deterministic per-instance request list, so batch properties stay pure
   functions of the instance (which the shrinker edits freely). *)
let derived_requests inst k =
  let seed =
    (inst.Instance.n_nodes * 1_000_003)
    + (Array.length inst.Instance.links * 8191)
    + (inst.Instance.n_wavelengths * 131)
    + (inst.Instance.source * 17)
    + inst.Instance.target
  in
  let rng = Rng.create seed in
  let n = inst.Instance.n_nodes in
  if n < 2 then []
  else Gen.requests rng ~n_nodes:n k

let batch_result_equal (a : Batch.result) (b : Batch.result) =
  a.Batch.outcomes = b.Batch.outcomes
  && a.admitted = b.admitted
  && a.dropped = b.dropped
  && a.total_cost = b.total_cost
  && a.final_load = b.final_load

let check_permutation inst =
  let net = Instance.network inst in
  let n = inst.Instance.n_nodes in
  let reqs = derived_requests inst (min 8 (n * (n - 1))) in
  if reqs = [] then None
  else begin
    let policy = inst.Instance.policy in
    let sorted l =
      List.sort compare (List.map (fun r -> (r.Types.src, r.Types.dst)) l)
    in
    let* () =
       if Batch.arrange net Batch.Fifo reqs <> reqs then
         fail "Fifo arrangement reorders the batch"
       else None
    in
    let a1 = Batch.arrange net Batch.Shortest_first reqs in
    let perm = List.rev reqs in
    let a2 = Batch.arrange net Batch.Shortest_first perm in
    let* () =
       if sorted a1 <> sorted reqs then
         fail "Shortest_first arrangement is not a permutation of the batch"
       else None
    in
    if a1 = a2 then begin
      let r1 =
        Batch.route_parallel ~order:Batch.Shortest_first ~jobs:1 (Net.copy net) policy reqs
      in
      let r2 =
        Batch.route_parallel ~order:Batch.Shortest_first ~jobs:1 (Net.copy net) policy perm
      in
      if not (batch_result_equal r1 r2) then
        fail "equal arrangements gave different batch results under permutation"
      else None
    end
    else None
  end

let check_obs_jobs inst =
  let net = Instance.network inst in
  let policy = inst.Instance.policy in
  let plain = Router.route net policy ~source:inst.source ~target:inst.target in
  let with_obs =
    Router.route ~obs:(Rr_obs.Obs.create ()) net policy ~source:inst.source
      ~target:inst.target
  in
  let* () =
     if plain <> with_obs then fail "enabling observability changed the route" else None
  in
  let n = inst.Instance.n_nodes in
  let reqs = derived_requests inst (min 6 (n * (n - 1))) in
  if reqs = [] then None
  else begin
    let reference = Batch.route ~order:Batch.Fifo (Net.copy net) policy reqs in
    let obs_run =
      Batch.route ~order:Batch.Fifo ~obs:(Rr_obs.Obs.create ()) (Net.copy net) policy reqs
    in
    let* () =
       if not (batch_result_equal reference obs_run) then
         fail "enabling observability changed the batch result"
       else None
    in
    List.fold_left
      (fun acc jobs ->
        match acc with
        | Some _ -> acc
        | None ->
          let r =
            Batch.route_parallel ~order:Batch.Fifo ~jobs (Net.copy net) policy reqs
          in
          if not (batch_result_equal reference r) then
            fail "route_parallel with jobs=%d differs from sequential two-phase" jobs
          else None)
      None [ 1; 2; 4 ]
  end

(* ------------------------------------------------------------------ *)
(* Network_io round-trip                                                *)

let check_io_roundtrip inst =
  let text = Rr_wdm.Network_io.print (Instance.network inst) in
  match Rr_wdm.Network_io.parse text with
  | Error m -> fail "printed network does not re-parse: %s" m
  | Ok net2 ->
    let inst2 =
      Instance.of_network net2 ~source:inst.Instance.source
        ~target:inst.Instance.target ~policy:inst.Instance.policy
    in
    if not (Instance.equal inst inst2) then
      fail "print/parse round-trip changed the network"
    else None

(* ------------------------------------------------------------------ *)
(* Incremental auxiliary-graph engine vs fresh construction            *)

let bits = Int64.bits_of_float

(* The arcs an auxiliary graph exposes, in arc-id order, as
   (src, dst, kind, weight-bits).  For a fresh graph every arc counts; for
   a cache view only the enabled subsequence does.  Identical lists mean
   the two graphs present the same search problem bit for bit. *)
let aux_projection (t : Rr_wdm.Auxiliary.t) en =
  let g = t.Rr_wdm.Auxiliary.graph in
  let out = ref [] in
  for a = Rr_graph.Digraph.n_edges g - 1 downto 0 do
    if en a then
      out :=
        ( Rr_graph.Digraph.src g a,
          Rr_graph.Digraph.dst g a,
          t.Rr_wdm.Auxiliary.kind.(a),
          bits t.Rr_wdm.Auxiliary.weight.(a) )
        :: !out
  done;
  !out

(* Suurballe outcomes compared through physical links (arc ids differ
   between the superset graph and a fresh graph by construction). *)
let pair_projection aux = function
  | None -> None
  | Some ((p1, p2), w) ->
    Some
      ( Rr_wdm.Auxiliary.links_of_path aux p1,
        Rr_wdm.Auxiliary.links_of_path aux p2,
        bits w )

let check_aux_cache inst =
  let module Aux = Rr_wdm.Auxiliary in
  let module Cache = Rr_wdm.Aux_cache in
  let net = Instance.network inst in
  let n = Net.n_nodes net in
  let m = Net.n_links net in
  if m = 0 then None
  else begin
    let cache = Cache.create net in
    (* Deterministic function of the instance (the shrinker replays it):
       the op sequence is derived from the instance's own shape. *)
    let rng =
      Rng.create
        (Hashtbl.hash
           ( n,
             inst.Instance.n_wavelengths,
             m,
             inst.Instance.source,
             inst.Instance.target ))
    in
    let compare_once s d =
      let fresh = Aux.gprime net ~source:s ~target:d in
      ignore (Cache.sync cache : Cache.sync_stats);
      let view, en = Cache.gprime_view cache ~source:s ~target:d in
      if aux_projection fresh (fun _ -> true) <> aux_projection view en then
        fail "cached G' arcs/weights differ from fresh (request %d->%d)" s d
      else begin
        let pf = pair_projection fresh (Aux.disjoint_pair fresh) in
        let pc = pair_projection view (Aux.disjoint_pair ~enabled:en view) in
        let* () =
          if pf <> pc then
            fail "cached Suurballe result differs from fresh (request %d->%d)" s d
          else None
        in
        (* End to end: the full policy decision must be byte-identical. *)
        let plain = Router.route net inst.Instance.policy ~source:s ~target:d in
        let cached =
          Router.route ~aux_cache:cache net inst.Instance.policy ~source:s
            ~target:d
        in
        if plain <> cached then
          fail "cached routing decision differs from rebuild (request %d->%d)" s d
        else None
      end
    in
    let random_pair () =
      let s = Rng.int rng n in
      let d = Rng.int rng (n - 1) in
      (s, if d >= s then d + 1 else d)
    in
    let admitted = ref [] in
    let err = ref None in
    let steps = 14 in
    let i = ref 0 in
    while !err = None && !i < steps do
      incr i;
      let s, d = random_pair () in
      match compare_once s d with
      | Some _ as e -> err := e
      | None ->
        (* Interleave a mutation for the next sync to absorb: admit,
           release, or a failure-state flip. *)
        let r = Rng.uniform rng in
        if r < 0.5 then (
          match
            Router.admit ~aux_cache:cache net inst.Instance.policy ~source:s
              ~target:d
          with
          | Some sol -> admitted := sol :: !admitted
          | None -> ())
        else if r < 0.8 then (
          match !admitted with
          | [] -> ()
          | sols ->
            let j = Rng.int rng (List.length sols) in
            Types.release net (List.nth sols j);
            admitted := List.filteri (fun k _ -> k <> j) sols)
        else begin
          let e = Rng.int rng m in
          if Net.is_failed net e then Net.repair_link net e
          else Net.fail_link net e
        end
    done;
    !err
  end

(* ------------------------------------------------------------------ *)
(* Parallel batch engine vs jobs=1 under interleaved admit batches     *)

(* Counters plus histogram sample counts (durations are wall-clock and
   excluded).  [parallel.*] is dropped: the oversubscription clamp is a
   function of the host's core count, not of the batch. *)
let metric_signature obs =
  List.filter_map
    (fun (name, view) ->
      if String.starts_with ~prefix:"parallel." name then None
      else
        match view with
        | Rr_obs.Metrics.Counter c -> Some (name, c)
        | Rr_obs.Metrics.Histogram h -> Some (name, h.Rr_obs.Metrics.count)
        | Rr_obs.Metrics.Gauge _ -> None)
    (Rr_obs.Metrics.items (Rr_obs.Obs.metrics obs))

let used_state net =
  List.init (Net.n_links net) (fun e ->
      (Bitset.to_list (Net.used net e), Net.is_failed net e))

let check_batch_parallel inst =
  let n = inst.Instance.n_nodes in
  let reqs = derived_requests inst (min 12 (n * (n - 1))) in
  if reqs = [] then None
  else begin
    let policy = inst.Instance.policy in
    (* Up to three interleaved admit batches of similar size. *)
    let rec split k xs =
      if k <= 1 then [ xs ]
      else begin
        let len = (List.length xs + k - 1) / k in
        let rec take i = function
          | x :: rest when i < len ->
            let a, b = take (i + 1) rest in
            (x :: a, b)
          | rest -> ([], rest)
        in
        let a, b = take 0 xs in
        a :: split (k - 1) b
      end
    in
    let batches = split 3 reqs in
    (* One run: a persistent pool across the batches (so jobs > 1
       exercises shard resync), releases and failure flips between
       batches (so the resync has real deltas to replay — all derived
       from the previous results, hence identical across runs whenever
       the engine is deterministic). *)
    let run jobs =
      let net = Instance.network inst in
      let m = Net.n_links net in
      let obs = Rr_obs.Obs.create () in
      RR.Parallel.with_pool ~oversubscribe:true ~jobs (fun pool ->
          let results =
            List.mapi
              (fun b batch ->
                let r = Batch.route_parallel ~pool ~obs net policy batch in
                let k = ref 0 in
                List.iter
                  (fun o ->
                    match o.Batch.solution with
                    | Some sol ->
                      incr k;
                      if !k mod 3 = 0 then Types.release net sol
                    | None -> ())
                  r.Batch.outcomes;
                if m > 0 && b < List.length batches - 1 then begin
                  let e = b * 7 mod m in
                  if Net.is_failed net e then Net.repair_link net e
                  else Net.fail_link net e
                end;
                r)
              batches
          in
          (results, metric_signature obs, used_state net))
    in
    let ref_results, ref_metrics, ref_state = run 1 in
    List.fold_left
      (fun acc jobs ->
        match acc with
        | Some _ -> acc
        | None ->
          let results, metrics, state = run jobs in
          let* () =
            if
              not
                (List.for_all2 batch_result_equal ref_results results)
            then fail "batch outcomes differ between jobs=1 and jobs=%d" jobs
            else None
          in
          let* () =
            if metrics <> ref_metrics then
              fail "merged obs metrics differ between jobs=1 and jobs=%d" jobs
            else None
          in
          if state <> ref_state then
            fail "final network state differs between jobs=1 and jobs=%d" jobs
          else None)
      None [ 2; 4; 8 ]
  end

(* ------------------------------------------------------------------ *)
(* rr_serve pure handler vs direct library calls                       *)

module Sp = Rr_serve.Protocol
module Sc = Rr_serve.Core

(* Error messages are presentation, not semantics: normalise them away
   before byte-comparing encodings. *)
let serve_repr (r : Sp.response) =
  Sp.encode_response
    (match r with Sp.Error { kind; msg = _ } -> Sp.Error { kind; msg = "" } | r -> r)

let check_serve inst =
  let net_ref = Instance.network inst in
  let n = Net.n_nodes net_ref in
  let m = Net.n_links net_ref in
  if m = 0 then None
  else begin
    let policy = inst.Instance.policy in
    let core = ref (Sc.create ~policy (Instance.network inst)) in
    (* Deterministic function of the instance (the shrinker replays it). *)
    let rng =
      Rng.create
        (Hashtbl.hash
           ( n,
             inst.Instance.n_wavelengths,
             m,
             inst.Instance.source,
             inst.Instance.target,
             14 ))
    in
    (* Reference service state, maintained with plain library calls — no
       aux cache, no workspace, no obs — on an independent network copy. *)
    let ref_conns : (int, Types.solution) Hashtbl.t = Hashtbl.create 16 in
    let next_id = ref 0 in
    let admitted_total = ref 0 in
    let blocked_total = ref 0 in
    let ref_stats () =
      let failed = ref [] in
      for e = m - 1 downto 0 do
        if Net.is_failed net_ref e then failed := e :: !failed
      done;
      {
        Sp.st_nodes = n;
        st_links = m;
        st_wavelengths = Net.n_wavelengths net_ref;
        st_connections = Hashtbl.length ref_conns;
        st_in_use = Net.total_in_use net_ref;
        st_load = Net.network_load net_ref;
        st_failed_links = !failed;
        st_admitted_total = !admitted_total;
        st_blocked_total = !blocked_total;
      }
    in
    let ref_snapshot () =
      let conns =
        Hashtbl.fold (fun id sol acc -> (id, sol) :: acc) ref_conns []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        |> List.map (fun (id, sol) -> (id, sol.Types.primary, sol.Types.backup))
      in
      Rr_wdm.Network_io.print_snapshot net_ref ~conns
      ^ Printf.sprintf "# rr-serve meta next_id=%d admitted=%d blocked=%d\n"
          !next_id !admitted_total !blocked_total
    in
    (* Mirror of [Core.handle]'s contract in direct library calls. *)
    let expect (req : Sp.request) : Sp.response =
      match req with
      | Sp.Ping -> Sp.Pong
      | Sp.Query -> Sp.Stats (ref_stats ())
      | Sp.Admit { src; dst; policy = p } ->
        if src < 0 || src >= n || dst < 0 || dst >= n then
          Sp.Error { kind = Sp.Bad_request; msg = "" }
        else if src = dst then Sp.Error { kind = Sp.Bad_request; msg = "" }
        else begin
          let p = Option.value p ~default:policy in
          let rid = !next_id in
          incr next_id;
          match Router.admit net_ref p ~source:src ~target:dst with
          | Some sol ->
            Hashtbl.replace ref_conns rid sol;
            incr admitted_total;
            Sp.Admitted { id = rid; cost = Types.total_cost net_ref sol }
          | None ->
            incr blocked_total;
            Sp.Blocked { cause = "unknown" }
        end
      | Sp.Release { id } -> (
        match Hashtbl.find_opt ref_conns id with
        | None -> Sp.Error { kind = Sp.Unknown_id; msg = "" }
        | Some sol ->
          Types.release net_ref sol;
          Hashtbl.remove ref_conns id;
          Sp.Released { id })
      | Sp.Fail_link { link } ->
        if link < 0 || link >= m || Net.is_failed net_ref link then
          Sp.Error { kind = Sp.Bad_state; msg = "" }
        else begin
          Net.fail_link net_ref link;
          Sp.Link_failed { link }
        end
      | Sp.Repair_link { link } ->
        if link < 0 || link >= m || not (Net.is_failed net_ref link) then
          Sp.Error { kind = Sp.Bad_state; msg = "" }
        else begin
          Net.repair_link net_ref link;
          Sp.Link_repaired { link }
        end
      | Sp.Snapshot -> Sp.Snapshot_state { state = ref_snapshot () }
      (* Not generated by this script: bursts are covered differentially
         by the survive case (restoration semantics), restore/shutdown by
         the dedicated snapshot and service tests. *)
      | Sp.Fail_burst _ | Sp.Repair_burst _ | Sp.Restore _ | Sp.Shutdown ->
        Sp.Error { kind = Sp.Bad_request; msg = "" }
    in
    let random_pair () =
      let s = Rng.int rng n in
      let d = Rng.int rng (n - 1) in
      (s, if d >= s then d + 1 else d)
    in
    let gen_request () =
      let r = Rng.uniform rng in
      if r < 0.45 then begin
        let s, d = random_pair () in
        Sp.Admit { src = s; dst = d; policy = None }
      end
      else if r < 0.50 then
        (* Degenerate pair: exercises the validation error path. *)
        Sp.Admit { src = 0; dst = 0; policy = None }
      else if r < 0.65 then Sp.Release { id = Rng.int rng (max 1 !next_id) }
      else if r < 0.80 then begin
        let e = Rng.int rng m in
        if Net.is_failed net_ref e then Sp.Repair_link { link = e }
        else Sp.Fail_link { link = e }
      end
      else if r < 0.90 then Sp.Query
      else Sp.Ping
    in
    let steps = 20 in
    let restart_at = steps / 2 in
    let err = ref None in
    let i = ref 0 in
    while !err = None && !i < steps do
      incr i;
      let req = gen_request () in
      let got = Sc.handle !core req in
      let want = expect req in
      if serve_repr got <> serve_repr want then
        err :=
          fail "server response differs from library at step %d: %s vs %s" !i
            (serve_repr got) (serve_repr want)
      else begin
        (* Snapshot byte-identity against the independently maintained
           reference state, checked at every step. *)
        let snap = Sc.snapshot !core in
        if snap <> ref_snapshot () then
          err := fail "snapshot text diverges from reference at step %d" !i
        else if !i = restart_at then begin
          (* Mid-script restart: the restored core must continue the run
             byte-identically. *)
          match Sc.of_snapshot ~policy snap with
          | Ok core' -> core := core'
          | Error msg -> err := fail "restore failed at step %d: %s" !i msg
        end
      end
    done;
    let* () = !err in
    let* () =
      if used_state (Sc.network !core) <> used_state net_ref then
        fail "final per-link used/failed state differs from reference"
      else None
    in
    (* Bounded-queue ordering: the first [cap] requests of a round are
       answered in FIFO order, the overflow is Busy, positions align. *)
    let cap = 1 + Rng.int rng 4 in
    let extra = Rng.int rng 4 in
    let round =
      let acc = ref [] in
      for _ = 1 to cap + extra do
        acc := gen_request () :: !acc
      done;
      List.rev !acc
    in
    let expected = List.mapi (fun i req -> (i, req)) round in
    let got = Sc.handle_round !core ~queue_capacity:cap round in
    if List.length got <> cap + extra then
      fail "handle_round answered %d of %d requests" (List.length got)
        (cap + extra)
    else
      List.fold_left
        (fun acc ((i, req), resp) ->
          let* () = acc in
          if i < cap then begin
            let want = expect req in
            if serve_repr resp <> serve_repr want then
              fail "queued response %d differs: %s vs %s" i (serve_repr resp)
                (serve_repr want)
            else None
          end
          else begin
            match resp with
            | Sp.Error { kind = Sp.Busy; _ } -> None
            | r -> fail "overflow position %d not Busy: %s" i (serve_repr r)
          end)
        None
        (List.combine expected got)
  end

(* ------------------------------------------------------------------ *)
(* Survivability: restoration under scripted failure bursts            *)

type surv_conn = {
  sc_src : int;
  sc_dst : int;
  mutable sc_active : Slp.t;
  mutable sc_prot : RR.Partial_protect.protection;
}

(* Restoration must never corrupt the books.  A scripted failure/repair
   sequence drives {!Robust_routing.Restore} over a mixed population of
   fully-protected, partially-protected and effectively-unprotected
   connections; after every step the surviving state is checked against
   the Eq. 1 / Eq. 2 invariants, and the network's whole allocation state
   must equal a from-scratch re-allocation of the surviving working and
   protection paths onto a fresh copy of the instance network (the
   strongest possible statement that releases and splices returned
   exactly the resources they should have). *)
let check_survive inst =
  let module Protect = RR.Partial_protect in
  let module Restore = RR.Restore in
  let net = Instance.network inst in
  let n = Net.n_nodes net in
  let m = Net.n_links net in
  if m = 0 || n < 2 then None
  else begin
    (* Deterministic function of the instance, like check_aux_cache; the
       trailing 15 is the case id. *)
    let rng =
      Rng.create
        (Hashtbl.hash
           ( n,
             inst.Instance.n_wavelengths,
             m,
             inst.Instance.source,
             inst.Instance.target,
             15 ))
    in
    let policy = inst.Instance.policy in
    let aux_cache = Rr_wdm.Aux_cache.create net in
    let exposure =
      if Rng.uniform rng < 0.5 then Protect.All
      else begin
        let s = ref (Bitset.create m) in
        for e = 0 to m - 1 do
          if Rng.uniform rng < 0.6 then s := Bitset.add !s e
        done;
        Protect.Only !s
      end
    in
    let conns : (int, surv_conn) Hashtbl.t = Hashtbl.create 16 in
    let next_id = ref 0 in
    let random_pair () =
      let s = Rng.int rng n in
      let d = Rng.int rng (n - 1) in
      (s, if d >= s then d + 1 else d)
    in
    (* Alternate admission mechanisms so restoration sees every protection
       shape: classic full pairs and partial (segment) protection. *)
    let admit_one () =
      let s, d = random_pair () in
      let id = !next_id in
      incr next_id;
      let admitted =
        if id land 1 = 0 then
          match Router.admit ~aux_cache ~req:id net policy ~source:s ~target:d with
          | Some sol ->
            let prot =
              match sol.Types.backup with
              | Some b -> Protect.Full b
              | None -> Protect.Unprotected
            in
            Some (sol.Types.primary, prot)
          | None -> None
        else Protect.admit ~aux_cache ~exposure net ~source:s ~target:d
      in
      match admitted with
      | None -> ()
      | Some (primary, prot) ->
        Hashtbl.replace conns id
          { sc_src = s; sc_dst = d; sc_active = primary; sc_prot = prot }
    in
    (* lint: ordered — sorted by connection id below *)
    let sorted_conns () =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) conns []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    let restore_pass () =
      List.iter
        (fun (id, c) ->
          if
            Hashtbl.mem conns id
            && List.exists (Net.is_failed net) (Slp.links c.sc_active)
          then begin
            let rid = !next_id in
            incr next_id;
            match
              Restore.restore ~aux_cache ~req:rid
                ~reprovision:(Rng.uniform rng < 0.3)
                net policy
                ~request:{ Types.src = c.sc_src; dst = c.sc_dst }
                ~primary:c.sc_active ~protection:c.sc_prot
            with
            | Restore.Switched (p, prot) | Restore.Rerouted (p, prot) ->
              c.sc_active <- p;
              c.sc_prot <- prot
            | Restore.Dropped -> Hashtbl.remove conns id
          end)
        (sorted_conns ())
    in
    let scan () =
      List.fold_left
        (fun acc (id, c) ->
          let* () = acc in
          let* () =
            if not (Slp.link_simple c.sc_active) then
              fail "conn %d: working path repeats a physical link" id
            else None
          in
          let* () =
            match List.find_opt (Net.is_failed net) (Slp.links c.sc_active) with
            | Some e -> fail "conn %d: working path crosses failed link %d" id e
            | None -> None
          in
          let* () =
            match manual_cost net c.sc_active with
            | Error msg -> fail "conn %d: %s" id msg
            | Ok expected ->
              let got = Slp.cost net c.sc_active in
              if not (Float.is_finite got) then
                fail "conn %d: non-finite working cost" id
              else if not (close got expected) then
                fail "conn %d: Eq.1 mismatch (%.9g vs manual %.9g)" id got
                  expected
              else None
          in
          match c.sc_prot with
          | Protect.Unprotected -> None
          | Protect.Full b ->
            if not (Slp.link_simple b) then
              fail "conn %d: backup repeats a physical link" id
            else if not (Slp.edge_disjoint c.sc_active b) then
              fail "conn %d: full backup shares a link with the working path"
                id
            else None
          | Protect.Segments segs ->
            List.fold_left
              (fun acc seg ->
                let* () = acc in
                if not (Slp.link_simple seg.Protect.seg_detour) then
                  fail "conn %d: segment detour repeats a physical link" id
                else None)
              None segs)
        None (sorted_conns ())
    in
    (* Eq. 2 books balance: the live allocation state must be exactly what
       re-allocating every surviving path onto a fresh network produces
       (failure flags applied last, as in snapshot restore). *)
    let books () =
      let fresh = Instance.network inst in
      match
        List.iter
          (fun (_, c) ->
            Slp.allocate fresh c.sc_active;
            match c.sc_prot with
            | Protect.Unprotected -> ()
            | Protect.Full b -> Slp.allocate fresh b
            | Protect.Segments segs ->
              List.iter
                (fun seg -> Slp.allocate fresh seg.Protect.seg_detour)
                segs)
          (sorted_conns ())
      with
      | () ->
        for e = 0 to m - 1 do
          if Net.is_failed net e then Net.fail_link fresh e
        done;
        let live = used_state net and replayed = used_state fresh in
        if live <> replayed then begin
          let diff =
            List.mapi
              (fun e ((lu, lf), (ru, rf)) ->
                if lu <> ru || not (Bool.equal lf rf) then
                  Printf.sprintf "link %d live used=[%s]%s vs replay used=[%s]%s"
                    e
                    (String.concat ";" (List.map string_of_int lu))
                    (if lf then " failed" else "")
                    (String.concat ";" (List.map string_of_int ru))
                    (if rf then " failed" else "")
                else "")
              (List.combine live replayed)
            |> List.filter (fun s -> not (String.equal s ""))
          in
          fail
            "post-restoration allocation state differs from a from-scratch \
             re-allocation of the surviving connections: %s"
            (String.concat "; " diff)
        end
        else None
      | exception Invalid_argument msg ->
        fail "surviving state does not re-allocate on a fresh network: %s" msg
    in
    for _ = 1 to min 10 (2 * n) do
      admit_one ()
    done;
    let err = ref (match scan () with Some _ as s -> s | None -> books ()) in
    let step = ref 0 in
    while !err = None && !step < 8 do
      incr step;
      (* lint: ordered — ascending by construction *)
      let down = List.filter (Net.is_failed net) (List.init m Fun.id) in
      if (not (List.is_empty down)) && Rng.uniform rng < 0.35 then
        (* repair burst: bring most of the plant back *)
        List.iter
          (fun e -> if Rng.uniform rng < 0.7 then Net.repair_link net e)
          down
      else begin
        (* failure burst: one to three correlated cuts, then restoration
           in ascending connection-id order *)
        let burst = 1 + Rng.int rng (min 3 m) in
        for _ = 1 to burst do
          let e = Rng.int rng m in
          if not (Net.is_failed net e) then Net.fail_link net e
        done;
        restore_pass ()
      end;
      if Rng.uniform rng < 0.5 then admit_one ();
      err := (match scan () with Some _ as s -> s | None -> books ())
    done;
    !err
  end

module Rng = Rr_util.Rng
module Bitset = Rr_util.Bitset
module Iheap = Rr_util.Indexed_heap
module Pheap = Rr_util.Pairing_heap
module Uf = Rr_util.Union_find

let fail fmt = Printf.ksprintf (fun m -> Some m) fmt

module IntSet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Bitset vs Set.Make(Int)                                              *)

let check_bitset rng =
  (* Widths straddling the 62-bit word boundary are the interesting ones. *)
  let width = 1 + Rng.int rng 70 in
  let a = ref (Bitset.create width) and ma = ref IntSet.empty in
  let b = ref (Bitset.create width) and mb = ref IntSet.empty in
  let agree label s m =
    if Bitset.to_list s <> IntSet.elements m then
      fail "bitset %s: elements %s vs model %s" label
        (String.concat "," (List.map string_of_int (Bitset.to_list s)))
        (String.concat "," (List.map string_of_int (IntSet.elements m)))
    else if Bitset.cardinal s <> IntSet.cardinal m then
      fail "bitset %s: cardinal %d vs model %d" label (Bitset.cardinal s)
        (IntSet.cardinal m)
    else if Bitset.is_empty s <> IntSet.is_empty m then fail "bitset %s: is_empty" label
    else if Bitset.width s <> width then
      fail "bitset %s: width %d changed to %d" label width (Bitset.width s)
    else if Bitset.choose s <> IntSet.min_elt_opt m then fail "bitset %s: choose" label
    else
      let x = Rng.int rng width in
      if Bitset.mem s x <> IntSet.mem x m then fail "bitset %s: mem %d" label x
      else None
  in
  let result = ref None in
  let steps = 120 in
  let i = ref 0 in
  while !result = None && !i < steps do
    incr i;
    let x = Rng.int rng width in
    (match Rng.int rng 8 with
     | 0 | 1 ->
       a := Bitset.add !a x;
       ma := IntSet.add x !ma
     | 2 ->
       a := Bitset.remove !a x;
       ma := IntSet.remove x !ma
     | 3 ->
       b := Bitset.add !b x;
       mb := IntSet.add x !mb
     | 4 ->
       let u = Bitset.union !a !b and mu = IntSet.union !ma !mb in
       result := agree "union" u mu
     | 5 ->
       let u = Bitset.inter !a !b and mu = IntSet.inter !ma !mb in
       result := agree "inter" u mu
     | 6 ->
       let u = Bitset.diff !a !b and mu = IntSet.diff !ma !mb in
       result := agree "diff" u mu
     | _ ->
       if Bitset.subset !a !b <> IntSet.subset !ma !mb then
         result := fail "bitset subset disagrees"
       else if Bitset.equal !a !b <> IntSet.equal !ma !mb then
         result := fail "bitset equal disagrees"
       else if
         not
           (Bitset.equal
              (Bitset.of_list width (Bitset.to_list !a))
              !a)
       then result := fail "bitset of_list/to_list not an identity");
    if !result = None then result := agree "a" !a !ma;
    if !result = None then result := agree "b" !b !mb
  done;
  (* full covers every element *)
  match !result with
  | Some _ as r -> r
  | None ->
    let f = Bitset.full width in
    if Bitset.cardinal f <> width then fail "bitset full %d has cardinal %d" width (Bitset.cardinal f)
    else if not (Bitset.subset !a f) then fail "bitset not a subset of full"
    else None

(* ------------------------------------------------------------------ *)
(* Indexed_heap vs association table                                    *)

let check_indexed_heap rng =
  let cap = 4 + Rng.int rng 40 in
  let h = Iheap.create cap in
  let model = Hashtbl.create 16 in
  let prio () = Float.of_int (Rng.int rng 50) /. 4.0 in
  let model_min () =
    Hashtbl.fold
      (fun k p acc ->
        match acc with Some (_, bp) when bp <= p -> acc | _ -> Some (k, p))
      model None
  in
  let result = ref None in
  let steps = 150 in
  let i = ref 0 in
  while !result = None && !i < steps do
    incr i;
    let k = Rng.int rng cap in
    (match Rng.int rng 6 with
     | 0 | 1 ->
       if not (Iheap.mem h k) then begin
         let p = prio () in
         Iheap.insert h k p;
         Hashtbl.replace model k p
       end
     | 2 ->
       (* decrease-key on a queued key *)
       if Iheap.mem h k then begin
         let p = Hashtbl.find model k in
         let p' = p -. Float.of_int (1 + Rng.int rng 8) in
         Iheap.decrease h k p';
         Hashtbl.replace model k p'
       end
     | 3 ->
       let p = prio () in
       let expected =
         match Hashtbl.find_opt model k with
         | None -> Some p
         | Some old -> if p < old then Some p else None
       in
       Iheap.insert_or_decrease h k p;
       (match expected with Some p -> Hashtbl.replace model k p | None -> ())
     | 4 -> (
       match (Iheap.pop_min h, model_min ()) with
       | None, None -> ()
       | None, Some _ -> result := fail "indexed_heap empty but model is not"
       | Some _, None -> result := fail "indexed_heap popped from empty model"
       | Some (k, p), Some (_, mp) ->
         if p <> mp then
           result := fail "indexed_heap pop priority %g, model min %g" p mp
         else if Hashtbl.find_opt model k <> Some p then
           result := fail "indexed_heap popped key %d not at min priority" k
         else Hashtbl.remove model k)
     | _ ->
       if Rng.int rng 20 = 0 then begin
         Iheap.clear h;
         Hashtbl.reset model
       end);
    if !result = None then begin
      if Iheap.cardinal h <> Hashtbl.length model then
        result :=
          fail "indexed_heap cardinal %d vs model %d" (Iheap.cardinal h)
            (Hashtbl.length model)
      else begin
        let k = Rng.int rng cap in
        match Hashtbl.find_opt model k with
        | Some p ->
          if not (Iheap.mem h k) then result := fail "indexed_heap lost key %d" k
          else if Iheap.priority h k <> p then
            result := fail "indexed_heap priority of %d is %g, model %g" k (Iheap.priority h k) p
        | None ->
          if Iheap.mem h k then result := fail "indexed_heap ghost key %d" k
      end
    end
  done;
  (* Drain: the pop sequence must equal the model sorted by priority. *)
  match !result with
  | Some _ as r -> r
  | None ->
    let rec drain acc = match Iheap.pop_min h with
      | None -> List.rev acc
      | Some (_, p) -> drain (p :: acc)
    in
    let pops = drain [] in
    let sorted =
      List.sort compare (Hashtbl.fold (fun _ p acc -> p :: acc) model [])
    in
    if pops <> sorted then fail "indexed_heap drain order differs from sorted reference"
    else None

(* ------------------------------------------------------------------ *)
(* Pairing_heap vs alive-handle table                                   *)

let check_pairing_heap rng =
  let h = Pheap.create () in
  let alive : (int, float * int Pheap.handle) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 0 in
  let model_min () =
    Hashtbl.fold
      (fun _ (p, _) acc -> match acc with Some bp when bp <= p -> acc | _ -> Some p)
      alive None
  in
  let result = ref None in
  let steps = 150 in
  let i = ref 0 in
  while !result = None && !i < steps do
    incr i;
    (match Rng.int rng 5 with
     | 0 | 1 ->
       let p = Float.of_int (Rng.int rng 60) /. 4.0 in
       let id = !next in
       incr next;
       let hd = Pheap.insert h p id in
       Hashtbl.replace alive id (p, hd)
     | 2 ->
       (* decrease a random alive handle *)
       let ids = Hashtbl.fold (fun id _ acc -> id :: acc) alive [] in
       if ids <> [] then begin
         let id = List.nth ids (Rng.int rng (List.length ids)) in
         let p, hd = Hashtbl.find alive id in
         let p' = p -. Float.of_int (1 + Rng.int rng 8) in
         Pheap.decrease h hd p';
         Hashtbl.replace alive id (p', hd);
         if Pheap.priority hd <> p' then result := fail "pairing_heap handle priority stale"
         else if Pheap.value hd <> id then result := fail "pairing_heap handle value changed"
       end
     | 3 -> (
       match (Pheap.find_min h, model_min ()) with
       | None, None -> ()
       | Some (p, _), Some mp when p = mp -> ()
       | Some (p, _), Some mp -> result := fail "pairing_heap find_min %g, model %g" p mp
       | Some _, None -> result := fail "pairing_heap non-empty but model empty"
       | None, Some _ -> result := fail "pairing_heap empty but model is not")
     | _ -> (
       match (Pheap.pop_min h, model_min ()) with
       | None, None -> ()
       | Some (p, id), Some mp ->
         if p <> mp then result := fail "pairing_heap pop %g, model min %g" p mp
         else (
           match Hashtbl.find_opt alive id with
           | Some (pm, _) when pm = p -> Hashtbl.remove alive id
           | Some (pm, _) ->
             result := fail "pairing_heap popped %d at %g, model says %g" id p pm
           | None -> result := fail "pairing_heap popped dead value %d" id)
       | Some _, None -> result := fail "pairing_heap popped from empty model"
       | None, Some _ -> result := fail "pairing_heap empty but model is not"));
    if !result = None && Pheap.cardinal h <> Hashtbl.length alive then
      result :=
        fail "pairing_heap cardinal %d vs model %d" (Pheap.cardinal h)
          (Hashtbl.length alive)
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Union_find vs label array                                            *)

let check_union_find rng =
  let n = 2 + Rng.int rng 50 in
  let uf = Uf.create n in
  let label = Array.init n Fun.id in
  let relabel a b =
    (* naive: merge b's class into a's *)
    let la = label.(a) and lb = label.(b) in
    if la = lb then false
    else begin
      for i = 0 to n - 1 do
        if label.(i) = lb then label.(i) <- la
      done;
      true
    end
  in
  let classes () =
    let seen = Hashtbl.create 8 in
    Array.iter (fun l -> Hashtbl.replace seen l ()) label;
    Hashtbl.length seen
  in
  let result = ref None in
  let steps = 100 in
  let i = ref 0 in
  while !result = None && !i < steps do
    incr i;
    let a = Rng.int rng n and b = Rng.int rng n in
    (match Rng.int rng 3 with
     | 0 | 1 ->
       let merged = Uf.union uf a b in
       let model_merged = relabel a b in
       if merged <> model_merged then
         result := fail "union_find union %d %d returned %b, model %b" a b merged model_merged
     | _ ->
       if Uf.same uf a b <> (label.(a) = label.(b)) then
         result := fail "union_find same %d %d disagrees with model" a b);
    if !result = None then begin
      if Uf.count uf <> classes () then
        result := fail "union_find count %d vs model %d" (Uf.count uf) (classes ());
      (* find must be a consistent representative *)
      let c = Rng.int rng n and d = Rng.int rng n in
      if Uf.find uf c = Uf.find uf d && label.(c) <> label.(d) then
        result := fail "union_find find merged distinct classes %d %d" c d;
      if Uf.find uf c <> Uf.find uf d && label.(c) = label.(d) then
        result := fail "union_find find split one class %d %d" c d
    end
  done;
  !result

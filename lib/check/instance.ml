module Net = Rr_wdm.Network
module Conv = Rr_wdm.Conversion
module Bitset = Rr_util.Bitset
module Router = Robust_routing.Router

type link = {
  l_src : int;
  l_dst : int;
  l_weight : float;
  l_lambdas : int list;
}

type t = {
  n_nodes : int;
  n_wavelengths : int;
  converters : Conv.spec array;
  links : link array;
  source : int;
  target : int;
  policy : Router.policy;
}

let network t =
  Net.create ~n_nodes:t.n_nodes ~n_wavelengths:t.n_wavelengths
    ~links:
      (Array.to_list
         (Array.map
            (fun l ->
              {
                Net.ls_src = l.l_src;
                ls_dst = l.l_dst;
                ls_lambdas = l.l_lambdas;
                ls_weight = (fun _ -> l.l_weight);
              })
            t.links))
    ~converters:(fun v -> t.converters.(v))

let of_network net ~source ~target ~policy =
  let links = ref [] in
  for e = Net.n_links net - 1 downto 0 do
    if not (Net.is_failed net e) then begin
      let avail = Bitset.to_list (Net.available net e) in
      match avail with
      | [] -> ()
      | first :: _ ->
        let w0 = Net.weight net e first in
        List.iter
          (fun l ->
            if Net.weight net e l <> w0 then
              invalid_arg
                "Instance.of_network: per-wavelength weights are not \
                 serialisable")
          avail;
        links :=
          {
            l_src = Net.link_src net e;
            l_dst = Net.link_dst net e;
            l_weight = w0;
            l_lambdas = avail;
          }
          :: !links
    end
  done;
  let converters =
    Array.init (Net.n_nodes net) (fun v ->
        match Net.converter net v with
        | Conv.Table _ ->
          invalid_arg "Instance.of_network: Table converters are not serialisable"
        | spec -> spec)
  in
  {
    n_nodes = Net.n_nodes net;
    n_wavelengths = Net.n_wavelengths net;
    converters;
    links = Array.of_list !links;
    source;
    target;
    policy;
  }

let equal a b =
  a.n_nodes = b.n_nodes
  && a.n_wavelengths = b.n_wavelengths
  && a.converters = b.converters
  && a.links = b.links
  && a.source = b.source
  && a.target = b.target
  && a.policy = b.policy

(* Shrink metric: every move of {!Shrink} strictly reduces this, which is
   what guarantees termination of the greedy loop. *)
let conv_score = function
  | Conv.No_conversion -> 0
  | Conv.Full c -> if c = 0.0 then 1 else 2
  | Conv.Range (r, c) -> 3 + (2 * r) + if c = 0.0 then 0 else 1
  | Conv.Table _ -> 100

let size t =
  let link_score l =
    (8 * List.length l.l_lambdas) + if l.l_weight = 1.0 then 0 else 1
  in
  (1000 * t.n_nodes)
  + (50 * Array.length t.links)
  + (20 * t.n_wavelengths)
  + Array.fold_left (fun acc l -> acc + link_score l) 0 t.links
  + Array.fold_left (fun acc c -> acc + conv_score c) 0 t.converters

(* ------------------------------------------------------------------ *)
(* Repro text                                                           *)

let to_repro ~case t =
  Printf.sprintf "# rr-check case=%s\n# rr-check policy=%s\n# rr-check request=%d,%d\n%s"
    case
    (Router.policy_name t.policy)
    t.source t.target
    (Rr_wdm.Network_io.print (network t))

type repro = { r_case : string; r_instance : t; r_all_pairs : bool }

let directive line =
  let prefix = "# rr-check " in
  let n = String.length prefix in
  let line = String.trim line in
  if String.length line > n && String.sub line 0 n = prefix then
    let rest = String.sub line n (String.length line - n) in
    match String.index_opt rest '=' with
    | Some i ->
      Some (String.sub rest 0 i, String.sub rest (i + 1) (String.length rest - i - 1))
    | None -> None
  else None

let of_repro text =
  let ( let* ) = Result.bind in
  let case = ref None and policy = ref None and request = ref None in
  List.iter
    (fun line ->
      match directive line with
      | Some ("case", v) -> case := Some v
      | Some ("policy", v) -> policy := Some v
      | Some ("request", v) -> request := Some v
      | _ -> ())
    (String.split_on_char '\n' text);
  let* case =
    Option.to_result ~none:"missing '# rr-check case=...' directive" !case
  in
  let* policy =
    match !policy with
    | None -> Ok Router.Cost_approx
    | Some name -> (
      match Router.policy_of_string name with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "unknown policy %S in repro" name))
  in
  let* net = Rr_wdm.Network_io.parse text in
  let n = Net.n_nodes net in
  let* source, target, all_pairs =
    match !request with
    | None -> Error "missing '# rr-check request=...' directive"
    | Some "all" -> Ok (0, (if n > 1 then 1 else 0), true)
    | Some v -> (
      match String.split_on_char ',' v with
      | [ s; d ] -> (
        match (int_of_string_opt (String.trim s), int_of_string_opt (String.trim d)) with
        | Some s, Some d when s >= 0 && s < n && d >= 0 && d < n && s <> d ->
          Ok (s, d, false)
        | _ -> Error (Printf.sprintf "invalid request %S" v))
      | _ -> Error (Printf.sprintf "invalid request %S" v))
  in
  Ok
    {
      r_case = case;
      r_instance = of_network net ~source ~target ~policy;
      r_all_pairs = all_pairs;
    }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>instance: %d nodes, %d links, W=%d, %d -> %d, policy %s@]" t.n_nodes
    (Array.length t.links) t.n_wavelengths t.source t.target
    (Router.policy_name t.policy)

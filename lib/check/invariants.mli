(** The property suite a fuzzing trial runs against an instance.

    Every check takes an {!Instance.t} and returns [None] (holds, or not
    applicable) or [Some message] (violated).  All checks are deterministic
    functions of the instance alone — the shrinker relies on this to replay
    a property while it edits the instance. *)

val check_routed_pair : Instance.t -> string option
(** Route the instance's request under its policy and verify the solution:
    {!Robust_routing.Types.validate} (chaining, residual availability,
    mutual edge-disjointness), {!Rr_wdm.Semilightpath.link_simple} on both
    paths, a backup present for every protected policy, switch-setting /
    wavelength consistency of every conversion, Eq. (1) cost re-accounting
    against an independent recomputation, and Eq. (2) load re-accounting
    through an allocate / release cycle. *)

val check_oracles : Instance.t -> string option
(** Differential check against {!Robust_routing.Exact} on small instances
    (n <= 8): Theorem 2's bound [approx <= 2 x optimal] gated on the
    conversion-cost <= adjacent-link-cost premise, optimality sanity
    ([optimal <= approx] whenever the approximation's pair is node-simple),
    and feasibility agreement under full conversion.  Skips (returns
    [None]) when the enumeration budget is exceeded. *)

val check_ilp : Instance.t -> string option
(** Second opinion: {!Robust_routing.Ilp_exact} agrees with
    {!Robust_routing.Exact} on feasibility and optimal cost (tiny
    instances; skips when the model is too large or the node budget is
    exhausted). *)

val check_weight_scale : Instance.t -> string option
(** Metamorphic: doubling every link weight and conversion cost leaves the
    routed hops identical and exactly doubles the cost (power-of-two
    scaling is float-exact, so the search's comparisons are unchanged). *)

val check_permutation : Instance.t -> string option
(** Metamorphic: {!Robust_routing.Batch.arrange} returns a permutation of
    its input, [Fifo] preserves order, and whenever two input orders
    arrange identically under [Shortest_first] the full
    [Batch.route_parallel] results coincide. *)

val check_obs_jobs : Instance.t -> string option
(** Metamorphic: enabling observability does not change routing results,
    and [Batch.route_parallel] is identical for [jobs] 1 / 2 / 4 and equal
    to the sequential two-phase [Batch.route]. *)

val check_io_roundtrip : Instance.t -> string option
(** [network -> print -> parse -> of_network] is the identity on instances
    — the guarantee that makes every shrunken repro loadable. *)

val check_aux_cache : Instance.t -> string option
(** Differential: an incremental {!Rr_wdm.Aux_cache} driven through an
    interleaved admit/release/fail/repair sequence stays byte-identical to
    a fresh [Aux.gprime] after every operation — same arcs and weight bits,
    same Suurballe pair, same end-to-end routing decision. *)

(** {1 Building blocks shared with the corpus runner} *)

val premise_theorem2 : Rr_wdm.Network.t -> bool
(** Every node's worst-case conversion cost is bounded by the cheapest
    incident link traversal (the Theorem 2 precondition). *)

val node_simple : Rr_wdm.Network.t -> Rr_wdm.Semilightpath.t -> bool

val check_batch_parallel : Instance.t -> string option
(** Differential: [Batch.route_parallel] over a persistent pool, replaying
    three interleaved admit batches (with releases and a failure-state
    flip between batches, so pool-resident shards must resync real
    deltas), is byte-identical across [jobs] 1 / 2 / 4 / 8 — same outcome
    lists, same merged obs counters and span counts (host-dependent
    [parallel.*] excluded), same final per-link residual and failure
    state.  Pools are created with [~oversubscribe:true] so multi-domain
    scheduling and the grouped commit are exercised even on small
    machines. *)

val check_serve : Instance.t -> string option
(** The rr_serve pure handler is a faithful facade over the library: a
    randomized admit/release/fail/repair/query script produces responses
    byte-identical (modulo error-message text) to direct [Router.admit] /
    [Network] calls on an independent copy of the network — the server
    path adds an aux cache, a workspace pool and id bookkeeping, none of
    which may change results.  Every step also pins the snapshot text
    against the reference state, the run is restarted mid-script from
    its own snapshot (restore must resume byte-identically), and a final
    [Core.handle_round] round checks bounded-queue semantics: FIFO
    responses aligned with request positions, overflow answered [Busy]. *)

val check_survive : Instance.t -> string option
(** Survivability: a scripted failure/repair burst sequence over a mixed
    population of fully-protected, partially-protected (segment detours)
    and unprotected connections, with {!Robust_routing.Restore} run after
    every burst in ascending connection-id order.  After every step, every
    surviving working path must be link-simple, avoid every failed link
    and re-price exactly (Eq. 1); [Full] backups must stay edge-disjoint
    from their working paths; and the network's whole allocation state
    (Eq. 2) must equal a from-scratch re-allocation of the surviving
    working and protection paths onto a fresh copy of the instance
    network — restoration may never leak or double-book a wavelength. *)

module Rng = Rr_util.Rng
module Net = Rr_wdm.Network
module Conv = Rr_wdm.Conversion
module Bitset = Rr_util.Bitset
module Router = Robust_routing.Router

(* Quantise to quarters so weights survive text round-trips bit-exactly,
   shrink toward 1.0 in few steps, and make cost comparisons robust. *)
let quantise w = Float.max 0.25 (Float.round (w *. 4.0) /. 4.0)

let default_policies =
  [
    Router.Cost_approx;
    Router.Cost_approx;
    Router.Cost_approx;  (* the approximation stack gets the lion's share *)
    Router.Load_aware;
    Router.Load_cost;
    Router.Two_step;
    Router.First_fit;
    Router.Most_used;
    Router.Least_used;
    Router.Node_protect;
    Router.Unprotected;
  ]

let topology rng ~n =
  match Rng.int rng 7 with
  | 0 -> Rr_topo.Reference.ring (max 3 n)
  | 1 ->
    let r = 2 + Rng.int rng 2 in
    let c = max 2 (n / r) in
    Rr_topo.Reference.grid r c
  | 2 -> Rr_topo.Reference.star (max 3 n)
  | 3 -> Rr_topo.Random_topo.degree_bounded ~rng ~n:(max 4 n) ~degree:(2 + Rng.int rng 2)
  | 4 -> Rr_topo.Random_topo.erdos_renyi ~rng ~n:(max 3 n) ~p:(0.35 +. Rng.float rng 0.4)
  | 5 -> Rr_topo.Random_topo.waxman ~rng ~n:(max 3 n) ()
  | _ -> if n >= 9 then Rr_topo.Reference.torus 3 3 else Rr_topo.Reference.ring (max 3 n)

let converter_table rng topo ~n_nodes ~w =
  (* Cheapest incident base weight per node, for premise-relative costs. *)
  let min_incident = Array.make n_nodes infinity in
  List.iter
    (fun (u, v, wt) ->
      let wt = quantise wt in
      if wt < min_incident.(u) then min_incident.(u) <- wt;
      if wt < min_incident.(v) then min_incident.(v) <- wt)
    topo.Rr_topo.Fitout.t_links;
  let cost v =
    let base = if min_incident.(v) = infinity then 1.0 else min_incident.(v) in
    (* 0.7: respect Theorem 2's premise; otherwise deliberately break it. *)
    let scale = if Rng.uniform rng < 0.7 then Rng.float rng 1.0 else 1.0 +. Rng.float rng 2.0 in
    quantise (scale *. base) |> fun c -> if Rng.uniform rng < 0.2 then 0.0 else c
  in
  let mode = Rng.int rng 4 in
  Array.init n_nodes (fun v ->
      let m = if mode = 3 then Rng.int rng 3 else mode in
      match m with
      | 0 -> Conv.Full (cost v)
      | 1 -> Conv.No_conversion
      | _ -> if w <= 1 then Conv.No_conversion else Conv.Range (1 + Rng.int rng (w - 1), cost v))

let fitted ?(dense = false) rng ~w topo =
  let density = if dense || Rng.bool rng then 1.0 else 0.5 +. Rng.float rng 0.5 in
  let conv = converter_table rng topo ~n_nodes:topo.Rr_topo.Fitout.t_nodes ~w in
  let topo =
    {
      topo with
      Rr_topo.Fitout.t_links =
        List.map (fun (u, v, wt) -> (u, v, quantise wt)) topo.Rr_topo.Fitout.t_links;
    }
  in
  Rr_topo.Fitout.fit_out ~rng ~n_wavelengths:w ~lambda_density:density
    ~converter:(fun v -> conv.(v))
    topo

let preload rng net =
  if Rng.uniform rng < 0.45 then begin
    let p = Rng.float rng 0.6 in
    for e = 0 to Net.n_links net - 1 do
      Bitset.iter
        (fun l -> if Rng.uniform rng < p then Net.allocate net e l)
        (Net.lambdas net e)
    done
  end

let request rng ~n_nodes =
  let s = Rng.int rng n_nodes in
  let d = Rng.int rng (n_nodes - 1) in
  let d = if d >= s then d + 1 else d in
  (s, d)

let requests rng ~n_nodes k =
  List.init k (fun _ ->
      let s, d = request rng ~n_nodes in
      { Robust_routing.Types.src = s; dst = d })

let instance ?(policies = default_policies) rng ~max_n =
  let n = 3 + Rng.int rng (max 1 (max_n - 2)) in
  let w = 1 + Rng.int rng 4 in
  let topo = topology rng ~n in
  let net = fitted rng ~w topo in
  preload rng net;
  let n_nodes = Net.n_nodes net in
  let s, d = request rng ~n_nodes in
  let policy = Rng.pick rng (Array.of_list policies) in
  Instance.of_network net ~source:s ~target:d ~policy

let small_instance rng ~max_n =
  let cap = min max_n 8 in
  let n = 3 + Rng.int rng (max 1 (cap - 2)) in
  let w = 1 + Rng.int rng 3 in
  let topo = topology rng ~n in
  let net = fitted ~dense:true rng ~w topo in
  if Rng.uniform rng < 0.3 then preload rng net;
  let n_nodes = Net.n_nodes net in
  let s, d = request rng ~n_nodes in
  Instance.of_network net ~source:s ~target:d ~policy:Router.Cost_approx

let tiny_instance rng =
  (* Sized for the ILP oracle: every extra node multiplies the
     branch-and-bound tableau work, so stay at <= 5 nodes, <= 2 lambdas. *)
  let n = 3 + Rng.int rng 3 in
  let w = 1 + Rng.int rng 2 in
  let topo =
    match Rng.int rng 3 with
    | 0 -> Rr_topo.Reference.ring n
    | 1 -> Rr_topo.Random_topo.degree_bounded ~rng ~n:(max 4 n) ~degree:2
    | _ -> Rr_topo.Reference.grid 2 2
  in
  let net = fitted ~dense:true rng ~w topo in
  let n_nodes = Net.n_nodes net in
  let s, d = request rng ~n_nodes in
  Instance.of_network net ~source:s ~target:d ~policy:Router.Cost_approx

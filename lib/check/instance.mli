(** Self-contained fuzzing scenarios.

    An instance is everything one differential-testing trial needs — a
    serialisable network description (nodes, wavelengths, links, converters),
    one request and the policy under test — in a form the shrinker can edit
    structurally and the repro printer can archive as {!Rr_wdm.Network_io}
    text.  Usage (preload) is always *baked into structure*: a preloaded
    network is represented by its residual network (used wavelengths dropped
    from the link's set, saturated links dropped entirely), which routing
    cannot distinguish from the original and which the textual format can
    carry. *)

type link = {
  l_src : int;
  l_dst : int;
  l_weight : float;                (** one weight for every wavelength *)
  l_lambdas : int list;            (** sorted, non-empty *)
}

type t = {
  n_nodes : int;
  n_wavelengths : int;
  converters : Rr_wdm.Conversion.spec array;  (** never [Table] *)
  links : link array;
  source : int;
  target : int;
  policy : Robust_routing.Router.policy;
}

val network : t -> Rr_wdm.Network.t
(** Build the (idle) network.  Raises [Invalid_argument] on a malformed
    instance — generator and shrinker only produce well-formed ones. *)

val of_network :
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  policy:Robust_routing.Router.policy ->
  t
(** Capture the *residual* network: per link, only the currently available
    wavelengths; links with none (or failed) are dropped.  Raises
    [Invalid_argument] on [Table] converters or per-wavelength weights —
    neither is serialisable. *)

val equal : t -> t -> bool
(** Structural equality (exact float comparison — repro round-trips are
    expected to be bit-faithful). *)

val size : t -> int
(** Strictly-decreasing shrink metric: nodes, links, wavelengths, converter
    complexity and non-unit weights all contribute. *)

(** {1 Repro text}

    The archive format is a {!Rr_wdm.Network_io} description prefixed with
    [# rr-check] directive comments, so any repro file is *also* loadable by
    the plain network parser and the CLI's [--file]. *)

val to_repro : case:string -> t -> string

type repro = {
  r_case : string;
  r_instance : t;
  r_all_pairs : bool;
      (** [request=all]: replay the property for every ordered node pair
          (corpus entries covering a whole preloaded topology). *)
}

val of_repro : string -> (repro, string) result

val pp : Format.formatter -> t -> unit

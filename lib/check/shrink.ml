module Conv = Rr_wdm.Conversion

(* Candidate edits, coarsest first: structural deletions shrink the search
   space fastest, cosmetic simplifications (weights, costs) run last. *)

let drop_link t i =
  let links = Array.of_list (List.filteri (fun j _ -> j <> i) (Array.to_list t.Instance.links)) in
  { t with Instance.links }

let drop_node t v =
  let renum x = if x > v then x - 1 else x in
  let links =
    Array.of_list
      (List.filter_map
         (fun l ->
           if l.Instance.l_src = v || l.Instance.l_dst = v then None
           else Some { l with Instance.l_src = renum l.l_src; l_dst = renum l.l_dst })
         (Array.to_list t.Instance.links))
  in
  let converters =
    Array.of_list
      (List.filteri (fun i _ -> i <> v) (Array.to_list t.Instance.converters))
  in
  {
    t with
    Instance.n_nodes = t.Instance.n_nodes - 1;
    links;
    converters;
    source = renum t.Instance.source;
    target = renum t.Instance.target;
  }

let drop_lambda t i l =
  let links =
    Array.mapi
      (fun j lk ->
        if j = i then
          { lk with Instance.l_lambdas = List.filter (fun x -> x <> l) lk.Instance.l_lambdas }
        else lk)
      t.Instance.links
  in
  { t with Instance.links }

(* Remap wavelength ids onto a dense prefix when some are unused anywhere;
   shrinks [n_wavelengths] and therefore every layered state space.  (Range
   converter semantics shift under the remap — irrelevant, the predicate
   decides what survives.) *)
let compress_wavelengths t =
  let used = Hashtbl.create 8 in
  Array.iter
    (fun l -> List.iter (fun x -> Hashtbl.replace used x ()) l.Instance.l_lambdas)
    t.Instance.links;
  let ids = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) used []) in
  let w' = List.length ids in
  if w' = 0 || w' = t.Instance.n_wavelengths then None
  else begin
    let map = Hashtbl.create 8 in
    List.iteri (fun i x -> Hashtbl.replace map x i) ids;
    let links =
      Array.map
        (fun l ->
          {
            l with
            Instance.l_lambdas =
              List.sort compare (List.map (Hashtbl.find map) l.Instance.l_lambdas);
          })
        t.Instance.links
    in
    Some { t with Instance.n_wavelengths = w'; links }
  end

let simplify_converter t v =
  let step = function
    | Conv.No_conversion -> []
    | Conv.Full c -> if c = 0.0 then [ Conv.No_conversion ] else [ Conv.Full 0.0; Conv.No_conversion ]
    | Conv.Range (r, c) ->
      (if r > 1 then [ Conv.Range (r - 1, c) ] else [])
      @ (if c <> 0.0 then [ Conv.Range (r, 0.0) ] else [])
      @ [ Conv.No_conversion ]
    | Conv.Table _ -> []
  in
  List.map
    (fun spec ->
      let converters = Array.copy t.Instance.converters in
      converters.(v) <- spec;
      { t with Instance.converters })
    (step t.Instance.converters.(v))

let flatten_weight t i =
  if t.Instance.links.(i).Instance.l_weight = 1.0 then []
  else
    [
      {
        t with
        Instance.links =
          Array.mapi
            (fun j l -> if j = i then { l with Instance.l_weight = 1.0 } else l)
            t.Instance.links;
      };
    ]

let candidates t =
  let n_links = Array.length t.Instance.links in
  List.concat
    [
      List.init n_links (fun i -> [ drop_link t i ]) |> List.concat;
      List.concat
        (List.init t.Instance.n_nodes (fun v ->
             if v = t.Instance.source || v = t.Instance.target || t.Instance.n_nodes <= 2
             then []
             else [ drop_node t v ]));
      List.concat
        (List.init n_links (fun i ->
             let ls = t.Instance.links.(i).Instance.l_lambdas in
             if List.length ls <= 1 then []
             else List.map (fun l -> drop_lambda t i l) ls));
      (match compress_wavelengths t with Some t' -> [ t' ] | None -> []);
      List.concat (List.init t.Instance.n_nodes (fun v -> simplify_converter t v));
      List.concat (List.init n_links (fun i -> flatten_weight t i));
    ]

let minimize ?(max_evals = 4_000) prop inst =
  let msg0 =
    match prop inst with
    | Some m -> m
    | None -> invalid_arg "Shrink.minimize: instance does not fail the property"
  in
  let evals = ref 0 in
  let rec loop inst msg =
    let rec try_moves = function
      | [] -> (inst, msg)
      | cand :: rest ->
        if !evals >= max_evals then (inst, msg)
        else begin
          incr evals;
          (* A move can only be accepted if it strictly shrinks — guards
             against a buggy move looping forever. *)
          if Instance.size cand >= Instance.size inst then try_moves rest
          else
            match prop cand with
            | Some m -> loop cand m
            | None -> try_moves rest
        end
    in
    if !evals >= max_evals then (inst, msg) else try_moves (candidates inst)
  in
  loop inst msg0

(** Greedy counterexample minimisation.

    Given a failing predicate and an instance that fails it, repeatedly try
    structural reductions — drop a link, drop a node (renumbering), drop a
    wavelength from a link, compress unused wavelength ids, simplify a
    converter, flatten a weight to 1 — keeping any edit under which the
    predicate still fails.  Every accepted edit strictly reduces
    {!Instance.size}, so the loop terminates; [max_evals] additionally
    bounds the number of predicate evaluations for expensive properties. *)

val minimize :
  ?max_evals:int ->
  (Instance.t -> string option) ->
  Instance.t ->
  Instance.t * string
(** [minimize prop inst] requires [prop inst = Some _] and returns the
    minimised instance together with its failure message. *)

(** Model-based properties for the {!Rr_util} containers.

    Each check runs a random operation sequence simultaneously against the
    real container and a deliberately naive reference implementation
    (sorted lists, label arrays) and compares observable behaviour after
    every step.  Deterministic in the given RNG; returns [None] on
    agreement, [Some message] naming the first divergence. *)

val check_bitset : Rr_util.Rng.t -> string option
val check_indexed_heap : Rr_util.Rng.t -> string option
val check_pairing_heap : Rr_util.Rng.t -> string option
val check_union_find : Rr_util.Rng.t -> string option

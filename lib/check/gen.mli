(** Scenario sampling for the differential fuzzer.

    All sampling is driven by an explicit {!Rr_util.Rng.t}, so a (seed,
    trial) pair pins the instance exactly.  Distributions deliberately mix
    benign and adversarial territory: reference topologies next to random
    ones, full next to range-limited next to absent converters, idle next to
    heavily preloaded wavelength pools, and conversion costs that sometimes
    violate Theorem 2's premise (oracle checks re-derive the premise and
    gate themselves). *)

val instance :
  ?policies:Robust_routing.Router.policy list ->
  Rr_util.Rng.t ->
  max_n:int ->
  Instance.t
(** General-purpose scenario: 3 .. [max_n] nodes, 1 .. 4 wavelengths,
    possibly sparse wavelength sets and preload (baked residually).
    [policies] is the pool the per-trial policy is drawn from (default:
    every protected policy plus [Unprotected], excluding [Exact]). *)

val small_instance : Rr_util.Rng.t -> max_n:int -> Instance.t
(** Oracle-sized scenario: at most [min max_n 8] nodes and denser wavelength
    availability, so {!Robust_routing.Exact} stays affordable.  Policy is
    pinned to [Cost_approx]. *)

val tiny_instance : Rr_util.Rng.t -> Instance.t
(** ILP-sized scenario: at most 6 nodes, at most 3 wavelengths, few links. *)

val requests : Rr_util.Rng.t -> n_nodes:int -> int -> Robust_routing.Types.request list
(** [requests rng ~n_nodes k] draws [k] random valid requests. *)

module Aux = Rr_wdm.Auxiliary
module Layered = Rr_wdm.Layered
module Workspace = Rr_util.Workspace

type detail = {
  aux : Aux.t;
  aux_weight : float;
  links1 : int list;
  links2 : int list;
  solution : Types.solution;
  refined_cost : float;
}

(* Refine one auxiliary path: optimal semilightpath within the physical
   subgraph its traversal arcs induce.  With a workspace, link-subset
   membership uses its stamped mark set (independent of the distance
   epoch, so the layered search below may reset distances freely). *)
let refine net ?workspace ~source ~target links =
  match workspace with
  | Some ws ->
    Workspace.mark_reset ws (Rr_wdm.Network.n_links net);
    List.iter (Workspace.mark ws) links;
    Layered.optimal net ~link_enabled:(Workspace.marked ws) ~workspace:ws
      ~source ~target
  | None ->
    let set = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.replace set e ()) links;
    Layered.optimal net ~link_enabled:(Hashtbl.mem set) ~source ~target

let route_detailed ?workspace net ~source ~target =
  let aux = Aux.gprime net ~source ~target in
  match Aux.disjoint_pair ?workspace aux with
  | None -> None
  | Some ((p1, p2), aux_weight) ->
    let links1 = Aux.links_of_path aux p1 in
    let links2 = Aux.links_of_path aux p2 in
    (match
       ( refine net ?workspace ~source ~target links1,
         refine net ?workspace ~source ~target links2 )
     with
     | Some (sl1, c1), Some (sl2, c2) ->
       (* Serve the cheaper path as primary. *)
       let (primary, _), (backup, _) =
         if c1 <= c2 then ((sl1, c1), (sl2, c2)) else ((sl2, c2), (sl1, c1))
       in
       Some
         {
           aux;
           aux_weight;
           links1;
           links2;
           solution = { Types.primary; backup = Some backup };
           refined_cost = c1 +. c2;
         }
     | _ -> None)

let route ?workspace net ~source ~target =
  Option.map (fun d -> d.solution) (route_detailed ?workspace net ~source ~target)

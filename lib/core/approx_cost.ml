module Aux = Rr_wdm.Auxiliary
module Layered = Rr_wdm.Layered
module Slp = Rr_wdm.Semilightpath
module Workspace = Rr_util.Workspace
module Obs = Rr_obs.Obs

type detail = {
  aux : Aux.t;
  aux_weight : float;
  links1 : int list;
  links2 : int list;
  solution : Types.solution;
  refined_cost : float;
}

(* Refine one auxiliary path: optimal semilightpath within the physical
   subgraph its traversal arcs induce.  With a workspace, link-subset
   membership uses its stamped mark set (independent of the distance
   epoch, so the layered search below may reset distances freely).

   The layered optimum is a walk in the wavelength graph; with
   range-limited converters it can revisit a physical link on a second
   wavelength (bouncing between adjacent converter nodes to emulate a
   multi-step conversion).  Such walks are not semilightpaths, so they are
   screened out here — the candidate subgraph then has no refinement. *)
let refine net ?workspace ?(obs = Obs.null) ~source ~target links =
  let result =
    match workspace with
    | Some ws ->
      Workspace.mark_reset ws (Rr_wdm.Network.n_links net);
      List.iter (Workspace.mark ws) links;
      Layered.optimal net ~link_enabled:(Workspace.marked ws) ~obs ~workspace:ws
        ~source ~target
    | None ->
      let set = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace set e ()) links;
      (* lint: no-thread — ?workspace is statically None in this branch *)
      Layered.optimal net ~link_enabled:(Hashtbl.mem set) ~obs ~source ~target
  in
  match result with
  | Some (p, _) when not (Slp.link_simple p) ->
    Obs.add obs "refine.nonsimple" 1;
    None
  | r -> r

let route_detailed ?aux_cache ?workspace ?(obs = Obs.null) net ~source ~target =
  let aux, enabled =
    match aux_cache with
    | Some cache ->
      if Rr_wdm.Aux_cache.network cache != net then
        invalid_arg "Approx_cost: aux_cache bound to a different network";
      ignore (Rr_wdm.Aux_cache.sync ~obs cache : Rr_wdm.Aux_cache.sync_stats);
      let aux, enabled = Rr_wdm.Aux_cache.gprime_view cache ~source ~target in
      (aux, Some enabled)
    | None ->
      let t0 = Obs.start obs in
      let aux = Aux.gprime net ~source ~target in
      Obs.stop obs "stage.aux_graph" t0;
      (aux, None)
  in
  let t0 = Obs.start obs in
  let pair = Aux.disjoint_pair ~obs ?workspace ?enabled aux in
  Obs.stop obs "stage.disjoint_pair" t0;
  match pair with
  | None ->
    Obs.add obs "route.block.no_disjoint_pair" 1;
    None
  | Some ((p1, p2), aux_weight) ->
    let t0 = Obs.start obs in
    let links1 = Aux.links_of_path aux p1 in
    let links2 = Aux.links_of_path aux p2 in
    Obs.stop obs "stage.induce" t0;
    let t0 = Obs.start obs in
    let r1 = refine net ?workspace ~obs ~source ~target links1
    and r2 = refine net ?workspace ~obs ~source ~target links2 in
    Obs.stop obs "stage.refine" t0;
    (match (r1, r2) with
     | Some (sl1, c1), Some (sl2, c2) ->
       (* Serve the cheaper path as primary. *)
       let (primary, _), (backup, _) =
         if c1 <= c2 then ((sl1, c1), (sl2, c2)) else ((sl2, c2), (sl1, c1))
       in
       Some
         {
           aux;
           aux_weight;
           links1;
           links2;
           solution = { Types.primary; backup = Some backup };
           refined_cost = c1 +. c2;
         }
     | _ ->
       Obs.add obs "route.block.no_wavelength" 1;
       None)

let route ?aux_cache ?workspace ?obs net ~source ~target =
  Option.map
    (fun d -> d.solution)
    (route_detailed ?aux_cache ?workspace ?obs net ~source ~target)

module Aux = Rr_wdm.Auxiliary
module Layered = Rr_wdm.Layered

type detail = {
  aux : Aux.t;
  aux_weight : float;
  links1 : int list;
  links2 : int list;
  solution : Types.solution;
  refined_cost : float;
}

(* Refine one auxiliary path: optimal semilightpath within the physical
   subgraph its traversal arcs induce. *)
let refine net ~source ~target links =
  let set = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace set e ()) links;
  Layered.optimal net ~link_enabled:(Hashtbl.mem set) ~source ~target

let route_detailed net ~source ~target =
  let aux = Aux.gprime net ~source ~target in
  match Aux.disjoint_pair aux with
  | None -> None
  | Some ((p1, p2), aux_weight) ->
    let links1 = Aux.links_of_path aux p1 in
    let links2 = Aux.links_of_path aux p2 in
    (match (refine net ~source ~target links1, refine net ~source ~target links2) with
     | Some (sl1, c1), Some (sl2, c2) ->
       (* Serve the cheaper path as primary. *)
       let (primary, _), (backup, _) =
         if c1 <= c2 then ((sl1, c1), (sl2, c2)) else ((sl2, c2), (sl1, c1))
       in
       Some
         {
           aux;
           aux_weight;
           links1;
           links2;
           solution = { Types.primary; backup = Some backup };
           refined_cost = c1 +. c2;
         }
     | _ -> None)

let route net ~source ~target =
  Option.map (fun d -> d.solution) (route_detailed net ~source ~target)

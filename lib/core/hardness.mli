(** The Lemma 1 reduction, as executable code.

    Section 3.2 proves NP-hardness of the optimal edge-disjoint
    semilightpath problem *without* conversion by reducing from the
    two-minimum-cost edge-disjoint path problem of Li, McCormick &
    Simchi-Levi (Networks 22, 1992): every link of a digraph carries a
    weight pair from {(0,0), (0,1), (1,0)}; decide whether two
    edge-disjoint s-t paths exist whose first path is costed by the first
    components and second path by the second components, with total
    cost 0.

    The reduction maps a pair-weighted instance to a 2-wavelength WDM
    network with no conversion: weight (0,0) → both wavelengths installed,
    (1,0) → only λ₂, (0,1) → only λ₁.  Two zero-cost edge-disjoint
    lightpaths (one per wavelength) exist iff the original instance is a
    yes-instance.  This module builds the reduction and decides the
    *resulting* WDM instance with the exact solver, so the equivalence is
    testable on small cases. *)

type pair_weight = Both_zero | First_one | Second_one
(** (0,0), (1,0) and (0,1) respectively. *)

type instance = {
  i_nodes : int;
  i_links : (int * int * pair_weight) list;
  i_src : int;
  i_dst : int;
}

val to_network : instance -> Rr_wdm.Network.t
(** The Lemma 1 construction.  Traversal weights: a link costs its pair
    component on the wavelength where that component applies — λ₁ carries
    the first-component cost, λ₂ the second — and wavelengths priced 1 by
    the pair are simply *absent* (the lemma's availability encoding). *)

val decide_zero_cost : instance -> bool
(** Whether two edge-disjoint lightpaths of total cost 0 — one forced onto
    λ₁, the other onto λ₂ — exist in the reduced network.  Decided exactly
    (exponential worst case; test-sized instances only). *)

val brute_force_decide : instance -> bool
(** Independent decision procedure on the *original* pair-weighted
    instance (enumerate disjoint simple-path pairs); ground truth for the
    reduction-correctness property test. *)

module Net = Rr_wdm.Network
module Layered = Rr_wdm.Layered
module Slp = Rr_wdm.Semilightpath
module Obs = Rr_obs.Obs

(* Layered optima are walks; screen out the rare non-link-simple ones so
   baselines never hand the admission validator an invalid path (see
   {!Slp.link_simple}). *)
let simple_only = function
  | Some (p, _) when not (Slp.link_simple p) -> None
  | r -> r

let two_step ?workspace ?(obs = Obs.null) net ~source ~target =
  match simple_only (Layered.optimal ~obs ?workspace net ~source ~target) with
  | None -> None
  | Some (p1, _) ->
    let link_enabled =
      match workspace with
      | Some ws ->
        Rr_util.Workspace.mark_reset ws (Net.n_links net);
        List.iter (Rr_util.Workspace.mark ws) (Slp.links p1);
        fun e -> not (Rr_util.Workspace.marked ws e)
      | None ->
        let used = Hashtbl.create 16 in
        List.iter (fun e -> Hashtbl.replace used e ()) (Slp.links p1);
        fun e -> not (Hashtbl.mem used e)
    in
    (match
       simple_only
         (Layered.optimal ~obs ?workspace net ~link_enabled ~source ~target)
     with
     | None -> None
     | Some (p2, _) -> Some { Types.primary = p1; backup = Some p2 })

let unprotected ?workspace ?(obs = Obs.null) net ~source ~target =
  match simple_only (Layered.optimal ~obs ?workspace net ~source ~target) with
  | None -> None
  | Some (p, _) -> Some { Types.primary = p; backup = None }

(* Hop-count shortest route; wavelengths assigned greedily afterwards in a
   caller-supplied preference order (first-fit = identity order, most-used
   = packing order, least-used = spreading order; cf. the adaptive RWA
   heuristics of Mokhtar & Azizoglu, the paper's ref [16]). *)
let greedy_path ?workspace ?obs net ~prefer ~link_enabled ~source ~target =
  let g = Net.graph net in
  let enabled e = link_enabled e && Net.has_available net e in
  match
    Rr_graph.Dijkstra.shortest_path ~enabled ?obs ?workspace g
      ~weight:(fun _ -> 1.0)
      ~source ~target
  with
  | None -> None
  | Some (links, _) ->
    (* Keep the current wavelength while available; otherwise the most
       preferred available wavelength reachable by an allowed conversion. *)
    let rec assign current acc = function
      | [] -> Some (List.rev acc)
      | e :: rest ->
        let avail = Net.available net e in
        let v = Net.link_src net e in
        let choose =
          match current with
          | Some l when Rr_util.Bitset.mem avail l -> Some l
          | Some l ->
            List.find_opt
              (fun l' ->
                Rr_util.Bitset.mem avail l' && Net.conv_allowed net v l l')
              (prefer ())
          | None -> List.find_opt (Rr_util.Bitset.mem avail) (prefer ())
        in
        (match choose with
         | None -> None
         | Some l -> assign (Some l) ({ Slp.edge = e; lambda = l } :: acc) rest)
    in
    (match assign None [] links with
     | None -> None
     | Some hops -> Some ({ Slp.hops }, links))

let greedy_pair ?workspace ?obs net ~prefer ~source ~target =
  match
    greedy_path ?workspace ?obs net ~prefer
      ~link_enabled:(fun _ -> true)
      ~source ~target
  with
  | None -> None
  | Some (p1, links1) ->
    let used = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.replace used e ()) links1;
    let link_enabled e = not (Hashtbl.mem used e) in
    (match greedy_path ?workspace ?obs net ~prefer ~link_enabled ~source ~target with
     | None -> None
     | Some (p2, _) -> Some { Types.primary = p1; backup = Some p2 })

let first_fit ?workspace ?obs net ~source ~target =
  let order = List.init (Net.n_wavelengths net) Fun.id in
  greedy_pair ?workspace ?obs net ~prefer:(fun () -> order) ~source ~target

let most_used_fit ?workspace ?obs net ~source ~target =
  greedy_pair ?workspace ?obs net
    ~prefer:(fun () -> Rr_wdm.Usage.most_used_order net)
    ~source ~target

let least_used_fit ?workspace ?obs net ~source ~target =
  greedy_pair ?workspace ?obs net
    ~prefer:(fun () -> Rr_wdm.Usage.least_used_order net)
    ~source ~target

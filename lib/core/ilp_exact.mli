(** The paper's Section 3.1 exact formulation: a 0/1 integer program over
    per-(link, wavelength) routing variables [x] (primary) and [y]
    (backup), with linearised conversion-cost terms [z], [t]
    (Eqs. 3–21), solved by {!Rr_ilp.Ilp} branch-and-bound.

    Variables are instantiated only for *available* wavelengths of the
    residual network, which is equivalent to (and much smaller than) the
    full [m·W] grid.  Disallowed conversions additionally contribute
    pairwise exclusion constraints [x_{e,λ₁} + x_{e',λ₂} <= 1] — implicit
    in the paper, which prices every conversion.

    This solver exists for fidelity and cross-checking: use {!Exact} for
    anything beyond toy instances. *)

val route :
  ?node_limit:int ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  (Types.solution * float) option
(** Optimal pair and objective value; [None] when the IP is infeasible
    (no two edge-disjoint semilightpaths). *)

val model_size : Rr_wdm.Network.t -> source:int -> target:int -> int * int
(** (variables, constraints) of the generated program — reported by the
    ILP-X experiment. *)

(** {1 Building blocks}

    Exposed so {!Provisioning.ilp_joint} can assemble the multi-request
    joint program from the same constraint generators. *)

type family
(** One routing-variable family: binary [x_{e,λ}] per available
    (link, wavelength). *)

val build_family : Rr_ilp.Ilp.t -> Rr_wdm.Network.t -> prefix:string -> family
val add_path_constraints :
  Rr_ilp.Ilp.t -> Rr_wdm.Network.t -> family -> source:int -> target:int -> unit
val add_conversion_constraints :
  Rr_ilp.Ilp.t -> Rr_wdm.Network.t -> family -> prefix:string -> unit
val var : family -> int -> int -> Rr_ilp.Ilp.var option
(** [var fam e λ] — the binary for using wavelength λ on link [e]. *)

val decode :
  Rr_wdm.Network.t ->
  family ->
  float array ->
  source:int ->
  target:int ->
  Rr_wdm.Semilightpath.t option

module Net = Rr_wdm.Network
module Bitset = Rr_util.Bitset

type pair_weight = Both_zero | First_one | Second_one

type instance = {
  i_nodes : int;
  i_links : (int * int * pair_weight) list;
  i_src : int;
  i_dst : int;
}

(* λ0 plays the paper's λ1 (first cost component), λ1 plays λ2. *)
let lambdas_of = function
  | Both_zero -> [ 0; 1 ]
  | First_one -> [ 1 ] (* (1,0): λ1 unavailable *)
  | Second_one -> [ 0 ] (* (0,1): λ2 unavailable *)

let to_network inst =
  let links =
    List.map
      (fun (u, v, pw) ->
        {
          Net.ls_src = u;
          ls_dst = v;
          ls_lambdas = lambdas_of pw;
          ls_weight = (fun _ -> 0.0);
        })
      inst.i_links
  in
  Net.create ~n_nodes:inst.i_nodes ~n_wavelengths:2 ~links
    ~converters:(fun _ -> Rr_wdm.Conversion.No_conversion)

(* Simple s-t paths of the reduced network that are continuously feasible
   on wavelength [l]. *)
let feasible_paths net ~lambda ~source ~target =
  Exact.enumerate_simple_paths net ~source ~target
  |> List.filter
       (fun links ->
         List.for_all (fun e -> Bitset.mem (Net.lambdas net e) lambda) links)

let decide_zero_cost inst =
  let net = to_network inst in
  let on_l0 = feasible_paths net ~lambda:0 ~source:inst.i_src ~target:inst.i_dst in
  let on_l1 = feasible_paths net ~lambda:1 ~source:inst.i_src ~target:inst.i_dst in
  List.exists
    (fun p1 ->
      let set = Hashtbl.create 8 in
      List.iter (fun e -> Hashtbl.replace set e ()) p1;
      List.exists (List.for_all (fun e -> not (Hashtbl.mem set e))) on_l1)
    on_l0

(* Ground truth on the original pair-weighted digraph: DFS enumeration of
   node-simple paths with zero cost under the respective component. *)
let brute_force_decide inst =
  let links = Array.of_list inst.i_links in
  let out = Array.make inst.i_nodes [] in
  Array.iteri
    (fun id (u, _, _) -> out.(u) <- id :: out.(u))
    links;
  let zero_under component id =
    let _, _, pw = links.(id) in
    match (component, pw) with
    | _, Both_zero -> true
    | `First, Second_one -> true (* pair (0,1): first component is 0 *)
    | `Second, First_one -> true (* pair (1,0): second component is 0 *)
    | `First, First_one | `Second, Second_one -> false
  in
  let enumerate component =
    let visited = Array.make inst.i_nodes false in
    let acc = ref [] in
    let rec dfs v path =
      if v = inst.i_dst then acc := List.rev path :: !acc
      else begin
        visited.(v) <- true;
        List.iter
          (fun id ->
            let _, w, _ = links.(id) in
            if zero_under component id && not visited.(w) then dfs w (id :: path))
          out.(v);
        visited.(v) <- false
      end
    in
    dfs inst.i_src [];
    !acc
  in
  let firsts = enumerate `First and seconds = enumerate `Second in
  List.exists
    (fun p1 -> List.exists (fun p2 -> List.for_all (fun e -> not (List.exists (Int.equal e) p1)) p2) seconds)
    firsts

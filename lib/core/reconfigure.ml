module Net = Rr_wdm.Network
module Slp = Rr_wdm.Semilightpath

type move = {
  conn : int;
  before : Types.solution;
  after : Types.solution;
}

type outcome = {
  moves : move list;
  initial_load : float;
  final_load : float;
  attempted : int;
}

let solution_links sol =
  Slp.links sol.Types.primary
  @ (match sol.Types.backup with Some b -> Slp.links b | None -> [])

(* Pressure = number of wavelengths the current solutions hold on links at
   the current maximum load; the tie-break objective of the local search. *)
let bottleneck_pressure net conns =
  let rho = Net.network_load net in
  let hot = Hashtbl.create 16 in
  for e = 0 to Net.n_links net - 1 do
    if Net.link_load net e >= rho -. 1e-12 then Hashtbl.replace hot e ()
  done;
  let pressure = ref 0 in
  List.iter
    (fun (_, sol) ->
      List.iter
        (fun e -> if Hashtbl.mem hot e then incr pressure)
        (solution_links sol))
    conns;
  (rho, !pressure)

let reduce_load ?(max_moves = 50) net conns0 =
  let initial_load = Net.network_load net in
  let conns = Hashtbl.create 64 in
  List.iter (fun (id, sol) -> Hashtbl.replace conns id sol) conns0;
  let moves = ref [] in
  let attempted = ref 0 in
  let improved = ref true in
  while !improved && List.length !moves < max_moves do
    improved := false;
    let rho = Net.network_load net in
    if rho > 0.0 then begin
      (* connections crossing some maximally loaded link *)
      let hot = Hashtbl.create 16 in
      for e = 0 to Net.n_links net - 1 do
        if Net.link_load net e >= rho -. 1e-12 then Hashtbl.replace hot e ()
      done;
      let candidates =
        (* lint: ordered — sorted by connection id below *)
        Hashtbl.fold
          (fun id sol acc ->
            if List.exists (Hashtbl.mem hot) (solution_links sol) then
              (id, sol) :: acc
            else acc)
          conns []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      let current =
        (* lint: ordered — sorted by connection id below *)
        Hashtbl.fold (fun id sol acc -> (id, sol) :: acc) conns []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      let _, pressure_before = bottleneck_pressure net current in
      (* Re-route preserving the connection's protection shape: protected
         connections go through the Section 4.2 load+cost pipeline;
         unprotected ones get a congestion-avoiding single path (hottest
         links excluded when possible). *)
      let reroute ~protected_ ~source ~target =
        if protected_ then Router.route net Router.Load_cost ~source ~target
        else begin
          let rho' = Net.network_load net in
          let cooler e = Net.link_load net e < rho' -. 1e-12 in
          let single p = { Types.primary = p; backup = None } in
          match Rr_wdm.Layered.optimal net ~link_enabled:cooler ~source ~target with
          | Some (p, _) -> Some (single p)
          | None ->
            Option.map
              (fun (p, _) -> single p)
              (Rr_wdm.Layered.optimal net ~source ~target)
        end
      in
      let try_move (id, sol) =
        if !improved then ()
        else begin
          incr attempted;
          Types.release net sol;
          let src = Slp.source net sol.Types.primary in
          let dst = Slp.target net sol.Types.primary in
          match reroute ~protected_:(Option.is_some sol.Types.backup) ~source:src ~target:dst with
          | Some fresh
            when Result.is_ok (Types.validate net { Types.src = src; dst } fresh) ->
            Types.allocate net fresh;
            Hashtbl.replace conns id fresh;
            let updated =
              (* lint: ordered — sorted by connection id below *)
              Hashtbl.fold (fun i s acc -> (i, s) :: acc) conns []
              |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
            in
            let rho', pressure' = bottleneck_pressure net updated in
            if
              rho' < rho -. 1e-12
              || (rho' <= rho +. 1e-12 && pressure' < pressure_before)
            then begin
              moves := { conn = id; before = sol; after = fresh } :: !moves;
              improved := true
            end
            else begin
              (* not an improvement: roll back *)
              Types.release net fresh;
              Types.allocate net sol;
              Hashtbl.replace conns id sol
            end
          | _ ->
            Types.allocate net sol;
            Hashtbl.replace conns id sol
        end
      in
      List.iter try_move candidates
    end
  done;
  {
    moves = List.rev !moves;
    initial_load;
    final_load = Net.network_load net;
    attempted = !attempted;
  }

(** The Section 3.3 approximation algorithm for the optimal edge-disjoint
    semilightpath problem.

    Pipeline: build the auxiliary graph [G'] on the residual network, run
    Suurballe ([Find_Two_Paths]) from [s'] to [t''], induce the two
    link-disjoint physical subgraphs [G₁], [G₂], and refine each with the
    optimal-semilightpath search (Lemma 2).  Theorem 2: the result costs at
    most twice the optimum when every node's conversion cost is bounded by
    the cost of traversing any incident link. *)

type detail = {
  aux : Rr_wdm.Auxiliary.t;
  aux_weight : float;
      (** ω(P₁) + ω(P₂) — also the cost of the unrefined images
          [P₁₁], [P₂₂] (proof of Lemma 2). *)
  links1 : int list;  (** physical links induced by the first aux path *)
  links2 : int list;
  solution : Types.solution;
  refined_cost : float;  (** C(P₁′) + C(P₂′) ≤ [aux_weight] *)
}

val route :
  ?aux_cache:Rr_wdm.Aux_cache.t ->
  ?workspace:Rr_util.Workspace.t ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  Types.solution option
(** [None] when no two edge-disjoint semilightpaths exist in the residual
    network (or when a degenerate converter configuration admits no
    consistent wavelength chain along the chosen subgraphs — impossible
    under the paper's full-switching assumption (i)).  [workspace] is
    shared by the Suurballe passes and the layered refinements.

    With [?obs] the pipeline records per-stage latency spans
    ([stage.aux_graph], [stage.disjoint_pair], [stage.induce],
    [stage.refine]) plus blocking-cause counters
    ([route.block.no_disjoint_pair] when Suurballe finds no pair,
    [route.block.no_wavelength] when a refinement fails) and a
    [refine.nonsimple] counter for layered walks screened out for
    revisiting a physical link (see {!Rr_wdm.Semilightpath.link_simple}).

    With [?aux_cache] (an {!Rr_wdm.Aux_cache} bound to [net]) the [G']
    build is replaced by an incremental sync ([stage.aux_delta] instead of
    [stage.aux_graph]); results are byte-identical.  Raises
    [Invalid_argument] if the cache is bound to a different network. *)

val route_detailed :
  ?aux_cache:Rr_wdm.Aux_cache.t ->
  ?workspace:Rr_util.Workspace.t ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  detail option
(** Same, exposing the intermediate quantities that the Lemma 2 and
    Theorem 2 experiments report. *)

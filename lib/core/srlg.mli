(** Shared-risk-link-group (SRLG) disjoint routing (extension).

    Edge-disjointness protects against a single *link* failure, but real
    fibres share conduits, ducts and bridges: one backhoe cuts every fibre
    in the trench.  Links tagged with a common risk group fail together,
    and a robust pair must be *SRLG-disjoint*: no group may appear on both
    paths (plain edge-disjointness is the special case where every link is
    its own group).

    Finding SRLG-disjoint pairs is NP-hard in general (unlike Suurballe's
    problem), so this module offers:

    - {!route}: the standard active-path-first heuristic — enumerate
      candidate primaries in increasing cost order, and for each, search a
      backup in the network purged of every link sharing a risk group with
      it; first hit wins.  Sound but incomplete.
    - {!route_exact}: exhaustive pair search (the {!Exact} machinery with
      the SRLG-disjointness predicate); exponential, for small instances
      and for certifying the heuristic. *)

type groups = int list array
(** [groups.(link)] = risk-group ids of the link (possibly empty: the link
    shares no fate with any other). *)

val validate_groups : Rr_wdm.Network.t -> groups -> (unit, string) result
(** Array length must equal the link count; group ids non-negative. *)

val share_risk : groups -> int list -> int list -> bool
(** Whether two (physical-link) paths share a link or a risk group. *)

val conduits_of_topology :
  rng:Rr_util.Rng.t -> Rr_wdm.Network.t -> conduits:int -> groups
(** Synthetic risk structure: each *fibre* (a directed link and its
    reverse) is assigned to one of [conduits] shared trenches; links of
    the same trench share fate.  Used by tests and benches. *)

val route :
  ?max_candidates:int ->
  Rr_wdm.Network.t ->
  groups ->
  source:int ->
  target:int ->
  Types.solution option
(** Active-path-first heuristic over at most [max_candidates] (default
    64) candidate primaries. *)

val route_exact :
  ?max_paths:int ->
  Rr_wdm.Network.t ->
  groups ->
  source:int ->
  target:int ->
  (Types.solution * float) option

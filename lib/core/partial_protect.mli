(** Partial path protection (Yang et al., "LP Relaxations for RWA with
    Partial Path Protection").

    The paper's policies reserve a full edge-disjoint backup for every
    connection.  When only some links are failure-exposed (hardened
    conduits, buried metro spans, an SRLG risk model), that over-provisions:
    a backup is only needed for the sub-segments of the primary that can
    actually fail.  This policy routes the unprotected optimum, carves its
    failure-exposed hops into maximal runs, and reserves one detour per run
    — falling back to the classic full edge-disjoint pair whenever
    segmentation does not pay (strictly fewer backup wavelength-links) or
    cannot cover every exposed run.

    Probes: [survive.partial.segmented] / [survive.partial.full_fallback]
    count which branch admitted; [survive.splice] counts failure-time
    segment switches ({!restore_segments}), mirrored by the
    [journal.survive.splice] event (a=source, b=target). *)

type exposure =
  | All  (** every link can fail — full protection semantics *)
  | Only of Rr_util.Bitset.t
      (** only the marked links can fail; hops on other links need no
          protection *)

type segment = {
  seg_lo : int;  (** first protected hop index of the primary, inclusive *)
  seg_hi : int;  (** last protected hop index, inclusive *)
  seg_detour : Rr_wdm.Semilightpath.t;
      (** reserved detour from the node entering hop [seg_lo] to the node
          leaving hop [seg_hi]; edge-disjoint from the whole primary *)
}

type protection =
  | Unprotected
  | Full of Rr_wdm.Semilightpath.t
      (** classic edge-disjoint backup (the fallback) *)
  | Segments of segment list
      (** one detour per exposed run, ascending by [seg_lo]; [[]] means
          the primary has no failure-exposed hop and needs no backup *)

val backup_hops : protection -> int
(** Reserved backup wavelength-links — the quantity the bench's
    survivability gate compares across policies. *)

val cost : Rr_wdm.Network.t -> protection -> float
(** Eq. 1 cost of the reserved protection paths (0 when unprotected). *)

val exposure_of_rates : float array -> exposure
(** [Only] of the links with a positive failure rate ([All] if every rate
    is positive). *)

val admit :
  ?aux_cache:Rr_wdm.Aux_cache.t ->
  ?workspace:Rr_util.Workspace.t ->
  ?obs:Rr_obs.Obs.t ->
  exposure:exposure ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  (Rr_wdm.Semilightpath.t * protection) option
(** Route and allocate a primary plus its partial protection.  Chooses
    [Segments] when every exposed run got a valid detour and the total
    detour length beats the full backup strictly; otherwise allocates the
    full edge-disjoint pair; [None] when neither is feasible (the
    connection would be unprotectable against its exposure). *)

val splice : Rr_wdm.Semilightpath.t -> segment -> Rr_wdm.Semilightpath.t
(** The primary with hops [seg_lo..seg_hi] replaced by the detour — the
    working path after a segment switch.  Pure hop-list surgery. *)

val restore_segments :
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  primary:Rr_wdm.Semilightpath.t ->
  segments:segment list ->
  Rr_wdm.Semilightpath.t option
(** Failure-time segment switch.  Precondition: the primary and every
    detour are still allocated; failed links are flagged on [net].  When
    every failed primary hop lies inside one segment whose detour is
    intact and the spliced path validates, releases the replaced hops and
    the other segments' detours and returns the spliced working path
    (running unprotected — the caller decides whether to re-provision).
    Returns [None] — releasing nothing — when the failure pattern is not
    coverable; the caller falls back to {!Restore.restore} semantics. *)

module Obs = Rr_obs.Obs

(* Typed per-worker state slots.  Each slot carries its own constructor of
   an extensible variant, so the pool can store heterogeneous worker state
   in one [(slot id -> univ)] table per worker while [get_state] stays
   fully typed: a slot can only project values it injected itself, and
   slot ids are globally unique, so the projection never sees a foreign
   constructor. *)
type univ = ..

type 'a slot = {
  sid : int;
  inject : 'a -> univ;
  project : univ -> 'a option;
}

let slot_ids = Atomic.make 0

let slot (type a) () : a slot =
  let module M = struct
    type univ += Box of a
  end in
  {
    sid = Atomic.fetch_and_add slot_ids 1;
    inject = (fun v -> M.Box v);
    project = (function M.Box v -> Some v | _ -> None);
  }

type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;       (* signalled when a new job generation starts *)
  finished : Condition.t;   (* signalled when the last worker finishes *)
  mutable job : (int -> unit) option;
  mutable job_gen : int;
  mutable pending : int;
  mutable stopping : bool;
  mutable error : exn option;
  mutable domains : unit Domain.t list;
  states : (int, univ) Hashtbl.t array;  (* per-worker slot storage *)
}

let record_error t exn =
  Mutex.lock t.mutex;
  if Option.is_none t.error then t.error <- Some exn;
  Mutex.unlock t.mutex

(* Each spawned worker handles every job generation exactly once; [seen]
   tracks the last generation it ran.  All signalling is under the mutex,
   which also provides the happens-before edges that publish job closures
   to workers and their writes back to the caller. *)
let worker_loop t i =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.stopping) && t.job_gen = !seen do
      Condition.wait t.work t.mutex
    done;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      seen := t.job_gen;
      let job = t.job in
      Mutex.unlock t.mutex;
      (match job with
      | None -> ()
      | Some f -> ( try f i with exn -> record_error t exn));
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.mutex
    end
  done

(* One memoized read: [Domain.recommended_domain_count] consults the OS
   (affinity mask, cgroup quota), so repeated calls are both syscall
   overhead and — if the mask changes mid-run — a way for [default_jobs]
   and the oversubscription clamp to disagree about the machine width.
   Forced once from the coordinating domain, never from workers. *)
let recommended = lazy (Domain.recommended_domain_count ())

let recommended_jobs () = Lazy.force recommended

(* Batch speculation stops scaling past the request-level parallelism of
   typical batches, and every worker pins a shard (snapshot + aux cache)
   in memory — cap the default so big machines don't pay for width the
   workload can't use. *)
let default_jobs () = min 8 (recommended_jobs ())

let create ?(obs = Obs.null) ?(oversubscribe = false) ~jobs () =
  if jobs < 1 then invalid_arg "Parallel.create: jobs must be at least 1";
  let size =
    let cap = recommended_jobs () in
    if jobs > cap && not oversubscribe then begin
      (* Extra domains would only time-share cores; refuse the
         oversubscription but leave a visible trace of the clamp. *)
      Obs.add obs "parallel.oversubscribed" 1;
      max 1 cap
    end
    else jobs
  in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      job_gen = 0;
      pending = 0;
      stopping = false;
      error = None;
      domains = [];
      states = Array.init size (fun _ -> Hashtbl.create 4);
    }
  in
  t.domains <-
    List.init (size - 1) (fun k -> Domain.spawn (fun () -> worker_loop t (k + 1)));
  t

let size t = t.size

let check_worker t w fn =
  if w < 0 || w >= t.size then
    invalid_arg (Printf.sprintf "Parallel.%s: worker %d out of range" fn w)

let get_state t slot ~worker =
  check_worker t worker "get_state";
  match Hashtbl.find_opt t.states.(worker) slot.sid with
  | None -> None
  | Some u -> slot.project u

let set_state t slot ~worker v =
  check_worker t worker "set_state";
  Hashtbl.replace t.states.(worker) slot.sid (slot.inject v)

let run t f =
  if t.size = 1 then f 0
  else begin
    Mutex.lock t.mutex;
    if Option.is_some t.job || t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Parallel.run: pool busy or shut down"
    end;
    t.error <- None;
    t.job <- Some f;
    t.job_gen <- t.job_gen + 1;
    t.pending <- t.size - 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* The calling domain is worker 0. *)
    (try f 0 with exn -> record_error t exn);
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.finished t.mutex
    done;
    t.job <- None;
    let err = t.error in
    t.error <- None;
    Mutex.unlock t.mutex;
    match err with Some e -> raise e | None -> ()
  end

(* Work-stealing scheduler.  One atomic [lo, hi) range per worker, packed
   into a single int (31 bits each half) so both bounds move under one
   CAS.  The owner pops [chunk] items from the front; a worker whose
   range is empty steals the back half of a victim's range and installs
   it as its own.  Ranges only ever shrink except for that install, which
   targets the thief's own (empty) cell — so every removed chunk is
   processed by exactly the worker that removed it, and [out] is fully
   written by join time even if another worker's emptiness sweep raced
   with a migration and exited early. *)
let max_items = 0x3FFF_FFFF

(* lint: no-alloc *)
let pack lo hi = (lo lsl 31) lor hi

(* lint: no-alloc *)
let range_lo r = r lsr 31

(* lint: no-alloc *)
let range_hi r = r land 0x7FFF_FFFF

let map ?(chunk = 1) t ~worker ~f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    if n > max_items then invalid_arg "Parallel.map: array too large";
    let chunk = max 1 chunk in
    let j = t.size in
    let out = Array.make n None in
    let ranges =
      Array.init j (fun w -> Atomic.make (pack (w * n / j) ((w + 1) * n / j)))
    in
    run t (fun w ->
        let st = worker w in
        let own = ranges.(w) in
        let rec take_own () =
          let r = Atomic.get own in
          let lo = range_lo r and hi = range_hi r in
          if lo < hi then begin
            let c = min chunk (hi - lo) in
            if Atomic.compare_and_set own r (pack (lo + c) hi) then
              for idx = lo to lo + c - 1 do
                (* Disjoint indices: no two workers ever write one slot. *)
                out.(idx) <- Some (f st arr.(idx))
              done;
            take_own ()
          end
        in
        (* One sweep over the other workers; returns [true] when it stole
           a range (installed as our own). *)
        let steal () =
          let got = ref false in
          let v = ref 1 in
          while (not !got) && !v < j do
            let victim = ranges.((w + !v) mod j) in
            let retry = ref true in
            while !retry do
              let r = Atomic.get victim in
              let lo = range_lo r and hi = range_hi r in
              if hi <= lo then retry := false
              else begin
                let keep = (hi - lo) / 2 in
                if Atomic.compare_and_set victim r (pack lo (lo + keep)) then begin
                  Atomic.set own (pack (lo + keep) hi);
                  got := true;
                  retry := false
                end
                (* CAS lost against the owner or another thief: re-read. *)
              end
            done;
            incr v
          done;
          !got
        in
        let rec drive () =
          take_own ();
          if steal () then drive ()
        in
        drive ());
    Array.map (function Some x -> x | None -> assert false) out
  end

let shutdown t =
  Mutex.lock t.mutex;
  if Option.is_some t.job then begin
    Mutex.unlock t.mutex;
    invalid_arg "Parallel.shutdown: pool busy"
  end;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?obs ?oversubscribe ~jobs f =
  let t = create ?obs ?oversubscribe ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;       (* signalled when a new job generation starts *)
  finished : Condition.t;   (* signalled when the last worker finishes *)
  mutable job : (int -> unit) option;
  mutable job_gen : int;
  mutable pending : int;
  mutable stopping : bool;
  mutable error : exn option;
  mutable domains : unit Domain.t list;
}

let record_error t exn =
  Mutex.lock t.mutex;
  if Option.is_none t.error then t.error <- Some exn;
  Mutex.unlock t.mutex

(* Each spawned worker handles every job generation exactly once; [seen]
   tracks the last generation it ran.  All signalling is under the mutex,
   which also provides the happens-before edges that publish job closures
   to workers and their writes back to the caller. *)
let worker_loop t i =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.stopping) && t.job_gen = !seen do
      Condition.wait t.work t.mutex
    done;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      seen := t.job_gen;
      let job = t.job in
      Mutex.unlock t.mutex;
      (match job with
      | None -> ()
      | Some f -> ( try f i with exn -> record_error t exn));
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.mutex
    end
  done

let create ~jobs =
  if jobs < 1 then invalid_arg "Parallel.create: jobs must be at least 1";
  let t =
    {
      size = jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      job_gen = 0;
      pending = 0;
      stopping = false;
      error = None;
      domains = [];
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker_loop t (k + 1)));
  t

let size t = t.size
let default_jobs () = Domain.recommended_domain_count ()

let run t f =
  if t.size = 1 then f 0
  else begin
    Mutex.lock t.mutex;
    if Option.is_some t.job || t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Parallel.run: pool busy or shut down"
    end;
    t.error <- None;
    t.job <- Some f;
    t.job_gen <- t.job_gen + 1;
    t.pending <- t.size - 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* The calling domain is worker 0. *)
    (try f 0 with exn -> record_error t exn);
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.finished t.mutex
    done;
    t.job <- None;
    let err = t.error in
    t.error <- None;
    Mutex.unlock t.mutex;
    match err with Some e -> raise e | None -> ()
  end

let map t ~worker ~f arr =
  let n = Array.length arr in
  let out = Array.make n None in
  let next = Atomic.make 0 in
  run t (fun i ->
      let st = worker i in
      let rec go () =
        let idx = Atomic.fetch_and_add next 1 in
        if idx < n then begin
          (* Disjoint indices: no two workers ever write the same slot. *)
          out.(idx) <- Some (f st arr.(idx));
          go ()
        end
      in
      go ());
  Array.map (function Some x -> x | None -> assert false) out

let shutdown t =
  Mutex.lock t.mutex;
  if Option.is_some t.job then begin
    Mutex.unlock t.mutex;
    invalid_arg "Parallel.shutdown: pool busy"
  end;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

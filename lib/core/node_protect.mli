(** Node-failure-tolerant routing (extension beyond the paper).

    Edge-disjoint backup paths survive any single *link* failure, but both
    paths may still die with one *node* (e.g. an optical cross-connect
    outage).  This variant finds two semilightpaths that are internally
    node-disjoint, via the gated auxiliary graph
    ({!Rr_wdm.Auxiliary.gprime_gated}) and the same
    Suurballe-plus-refinement pipeline as Section 3.3. *)

val route :
  ?workspace:Rr_util.Workspace.t ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  Types.solution option
(** [None] when no internally node-disjoint pair of semilightpaths exists
    in the residual network.  Returned paths are also edge-disjoint (node
    disjointness implies it). *)

val node_disjoint : Rr_wdm.Network.t -> Types.solution -> bool
(** Check that a solution's paths share no internal node — exported for
    tests and audits. *)

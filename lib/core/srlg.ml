module Net = Rr_wdm.Network
module Layered = Rr_wdm.Layered

type groups = int list array

let validate_groups net groups =
  if Array.length groups <> Net.n_links net then
    Error "Srlg: groups array length differs from link count"
  else if Array.exists (List.exists (fun g -> g < 0)) groups then
    Error "Srlg: negative group id"
  else Ok ()

let share_risk groups p1 p2 =
  let links = Hashtbl.create 16 in
  let risks = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace links e ();
      List.iter (fun g -> Hashtbl.replace risks g ()) groups.(e))
    p1;
  List.exists
    (fun e ->
      Hashtbl.mem links e || List.exists (Hashtbl.mem risks) groups.(e))
    p2

let conduits_of_topology ~rng net ~conduits =
  if conduits <= 0 then invalid_arg "Srlg.conduits_of_topology: need conduits > 0";
  let m = Net.n_links net in
  let groups = Array.make m [] in
  (* assign per unordered fibre so both directions share the trench *)
  let fibre_group = Hashtbl.create m in
  for e = 0 to m - 1 do
    let u = Net.link_src net e and v = Net.link_dst net e in
    let key = (min u v, max u v) in
    let g =
      match Hashtbl.find_opt fibre_group key with
      | Some g -> g
      | None ->
        let g = Rr_util.Rng.int rng conduits in
        Hashtbl.replace fibre_group key g;
        g
    in
    groups.(e) <- [ g ]
  done;
  groups

(* Candidate primaries in increasing assigned-cost order. *)
let candidate_primaries ?(max_candidates = 64) net ~source ~target =
  let paths =
    try Exact.enumerate_simple_paths ~max_paths:20_000 net ~source ~target
    with Exact.Budget_exceeded -> []
  in
  paths
  |> List.filter_map (fun links ->
         Option.map (fun (slp, c) -> (c, slp, links)) (Layered.assign_on_path net links))
  |> List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b)
  |> List.filteri (fun i _ -> i < max_candidates)

let backup_against net groups ~source ~target primary_links =
  let banned_groups = Hashtbl.create 8 in
  List.iter
    (fun e -> List.iter (fun g -> Hashtbl.replace banned_groups g ()) groups.(e))
    primary_links;
  let banned_links = Hashtbl.create 8 in
  List.iter (fun e -> Hashtbl.replace banned_links e ()) primary_links;
  let link_enabled e =
    (not (Hashtbl.mem banned_links e))
    && not (List.exists (Hashtbl.mem banned_groups) groups.(e))
  in
  Layered.optimal net ~link_enabled ~source ~target

let route ?max_candidates net groups ~source ~target =
  (match validate_groups net groups with
   | Ok () -> ()
   | Error e -> invalid_arg e);
  let rec try_candidates = function
    | [] -> None
    | (_, primary, links) :: rest -> (
      match backup_against net groups ~source ~target links with
      | Some (backup, _) -> Some { Types.primary; backup = Some backup }
      | None -> try_candidates rest)
  in
  try_candidates (candidate_primaries ?max_candidates net ~source ~target)

let route_exact ?max_paths net groups ~source ~target =
  (match validate_groups net groups with
   | Ok () -> ()
   | Error e -> invalid_arg e);
  let paths = Exact.enumerate_simple_paths ?max_paths net ~source ~target in
  let assigned =
    List.filter_map
      (fun links ->
        Option.map (fun (slp, c) -> (c, slp, links)) (Layered.assign_on_path net links))
      paths
    |> List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b)
  in
  let arr = Array.of_list assigned in
  let np = Array.length arr in
  let best = ref infinity in
  let best_pair = ref None in
  let rec outer i =
    if i < np then begin
      let ci, _, li = arr.(i) in
      if 2.0 *. ci < !best then begin
        let rec inner j =
          if j < np then begin
            let cj, _, lj = arr.(j) in
            if ci +. cj < !best then
              if not (share_risk groups li lj) then begin
                best := ci +. cj;
                best_pair := Some (arr.(i), arr.(j))
              end
              else inner (j + 1)
          end
        in
        inner (i + 1);
        outer (i + 1)
      end
    end
  in
  outer 0;
  match !best_pair with
  | None -> None
  | Some ((c1, s1, _), (c2, s2, _)) ->
    let primary, backup = if c1 <= c2 then (s1, s2) else (s2, s1) in
    Some ({ Types.primary; backup = Some backup }, !best)

module Net = Rr_wdm.Network
module Bitset = Rr_util.Bitset
module Digraph = Rr_graph.Digraph
module Slp = Rr_wdm.Semilightpath

(* One routing-variable family (x for the primary, y for the backup): the
   paper's constraints (4)-(9) and (10)-(15) are identical in shape. *)
type family = {
  var : (int * int, Rr_ilp.Ilp.var) Hashtbl.t; (* (link, λ) -> variable *)
}

let build_family ilp net ~prefix =
  let var = Hashtbl.create 64 in
  for e = 0 to Net.n_links net - 1 do
    Bitset.iter
      (fun l ->
        let name = Printf.sprintf "%s_e%d_l%d" prefix e l in
        let v = Rr_ilp.Ilp.add_binary ilp ~obj:(Net.weight net e l) name in
        Hashtbl.replace var (e, l) v)
      (Net.available net e)
  done;
  { var }

let lambda_terms net fam e coeff =
  Bitset.fold
    (fun l acc -> (Hashtbl.find fam.var (e, l), coeff) :: acc)
    (Net.available net e) []

(* Constraints (4)-(9) for a family, with [s]/[t] from the request. *)
let add_path_constraints ilp net fam ~source ~target =
  let g = Net.graph net in
  let live e = Net.has_available net e in
  (* (4): one wavelength per used link *)
  for e = 0 to Net.n_links net - 1 do
    if live e then Rr_ilp.Ilp.add_le ilp (lambda_terms net fam e 1.0) 1.0
  done;
  for v = 0 to Net.n_nodes net - 1 do
    let outs =
      Array.to_list (Digraph.out_edges g v)
      |> List.filter live
      |> List.concat_map (fun e -> lambda_terms net fam e 1.0)
    in
    let ins =
      Array.to_list (Digraph.in_edges g v)
      |> List.filter live
      |> List.concat_map (fun e -> lambda_terms net fam e 1.0)
    in
    (* (5)/(6): node-simple paths *)
    if v <> target && not (List.is_empty outs) then Rr_ilp.Ilp.add_le ilp outs 1.0;
    if v <> source && not (List.is_empty ins) then Rr_ilp.Ilp.add_le ilp ins 1.0;
    (* (7): conservation at intermediate nodes *)
    if v <> source && v <> target then begin
      let neg = List.map (fun (x, c) -> (x, -.c)) ins in
      if not (List.is_empty outs && List.is_empty ins) then
        Rr_ilp.Ilp.add_eq ilp (outs @ neg) 0.0
    end;
    (* (8)/(9): unit *net* flow out of s and into t.  Constraining the
       gross flow (out(s) = 1, in(t) = 1) admits spurious solutions made
       of a cycle through s plus a disjoint cycle through t with no s->t
       path at all; the net form kills both cycles.  Combined with
       (5)/(6) it also pins in(s) = out(t) = 0, keeping paths simple. *)
    if v = source then begin
      let neg = List.map (fun (x, c) -> (x, -.c)) ins in
      Rr_ilp.Ilp.add_eq ilp (outs @ neg) 1.0
    end;
    if v = target then begin
      let neg = List.map (fun (x, c) -> (x, -.c)) outs in
      Rr_ilp.Ilp.add_eq ilp (ins @ neg) 1.0
    end
  done

(* Conversion-cost linearisation (17)/(18) + disallowed-pair cuts for one
   family, over adjacent link pairs.  Returns nothing; z variables carry
   objective coefficient 1 through their definition constraints. *)
let add_conversion_constraints ilp net fam ~prefix =
  let g = Net.graph net in
  let live e = Net.has_available net e in
  for v = 0 to Net.n_nodes net - 1 do
    Array.iter
      (fun e ->
        if live e then
          Array.iter
            (fun e' ->
              if live e' && e <> e' then begin
                (* z_{e,e'} >= c_v(λ1,λ2)·(x_{e,λ1} + x_{e',λ2} − 1) *)
                let z =
                  Rr_ilp.Ilp.add_continuous ilp ~obj:1.0
                    (Printf.sprintf "%s_z_e%d_e%d" prefix e e')
                in
                Bitset.iter
                  (fun l1 ->
                    Bitset.iter
                      (fun l2 ->
                        let x1 = Hashtbl.find fam.var (e, l1) in
                        let x2 = Hashtbl.find fam.var (e', l2) in
                        match Net.conv_cost net v l1 l2 with
                        | Some c ->
                          if c > 0.0 then
                            Rr_ilp.Ilp.add_le ilp
                              [ (x1, c); (x2, c); (z, -1.0) ]
                              c
                        | None ->
                          (* conversion impossible: consecutive use of
                             (e,λ1) then (e',λ2) is forbidden *)
                          Rr_ilp.Ilp.add_le ilp [ (x1, 1.0); (x2, 1.0) ] 1.0)
                      (Net.available net e'))
                  (Net.available net e)
              end)
            (Digraph.out_edges g v))
      (Digraph.in_edges g v)
  done

let build net ~source ~target =
  if source = target then invalid_arg "Ilp_exact: source = target";
  let ilp = Rr_ilp.Ilp.create () in
  let x = build_family ilp net ~prefix:"x" in
  let y = build_family ilp net ~prefix:"y" in
  add_path_constraints ilp net x ~source ~target;
  add_path_constraints ilp net y ~source ~target;
  add_conversion_constraints ilp net x ~prefix:"x";
  add_conversion_constraints ilp net y ~prefix:"y";
  (* (16): a physical link serves at most one of the two paths *)
  for e = 0 to Net.n_links net - 1 do
    if Net.has_available net e then
      Rr_ilp.Ilp.add_le ilp
        (lambda_terms net x e 1.0 @ lambda_terms net y e 1.0)
        1.0
  done;
  (ilp, x, y)

let model_size net ~source ~target =
  let ilp, _, _ = build net ~source ~target in
  (Rr_ilp.Ilp.n_vars ilp, Rr_ilp.Ilp.n_constraints ilp)

(* Decode one family's incidence vector into a semilightpath by walking
   from the source. *)
let var fam e l = Hashtbl.find_opt fam.var (e, l)

let decode net fam values ~source ~target =
  let g = Net.graph net in
  let hop_from v =
    let found = ref None in
    Array.iter
      (fun e ->
        Bitset.iter
          (fun l ->
            match Hashtbl.find_opt fam.var (e, l) with
            | Some x when values.(x) > 0.5 -> found := Some { Slp.edge = e; lambda = l }
            | _ -> ())
          (Net.available net e))
      (Digraph.out_edges g v);
    !found
  in
  (* A node-simple path has at most [n_nodes - 1] hops; anything longer
     means the incidence vector contains a cycle and must not be chased. *)
  let rec walk v acc steps =
    if v = target then Some { Slp.hops = List.rev acc }
    else if steps >= Net.n_nodes net then
      failwith "Ilp_exact.decode: incidence vector contains a cycle"
    else
      match hop_from v with
      | None -> None
      | Some h -> walk (Net.link_dst net h.edge) (h :: acc) (steps + 1)
  in
  walk source [] 0

let route ?node_limit net ~source ~target =
  let ilp, x, y = build net ~source ~target in
  match Rr_ilp.Ilp.solve ?node_limit ilp with
  | None -> None
  | Some { Rr_ilp.Ilp.objective; values; _ } ->
    (match
       (decode net x values ~source ~target, decode net y values ~source ~target)
     with
     | Some p, Some b ->
       let cp = Slp.cost net p and cb = Slp.cost net b in
       let primary, backup = if cp <= cb then (p, b) else (b, p) in
       Some ({ Types.primary; backup = Some backup }, objective)
     | _ -> failwith "Ilp_exact.route: solution decoding failed")

module Aux = Rr_wdm.Auxiliary
module Net = Rr_wdm.Network
module Layered = Rr_wdm.Layered
module Slp = Rr_wdm.Semilightpath
module Obs = Rr_obs.Obs

(* Same screening as {!Approx_cost.refine}: a layered walk that revisits a
   physical link is not a semilightpath and cannot be admitted. *)
let refine net ?workspace ?(obs = Obs.null) ~source ~target links =
  let result =
    match workspace with
    | Some ws ->
      Rr_util.Workspace.mark_reset ws (Net.n_links net);
      List.iter (Rr_util.Workspace.mark ws) links;
      Layered.optimal net
        ~link_enabled:(Rr_util.Workspace.marked ws)
        ~obs ~workspace:ws ~source ~target
    | None ->
      let set = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace set e ()) links;
      (* lint: no-thread — ?workspace is statically None in this branch *)
      Layered.optimal net ~link_enabled:(Hashtbl.mem set) ~obs ~source ~target
  in
  match result with
  | Some (p, _) when not (Slp.link_simple p) ->
    Obs.add obs "refine.nonsimple" 1;
    None
  | r -> r

let route ?workspace ?(obs = Obs.null) net ~source ~target =
  let t0 = Obs.start obs in
  let aux = Aux.gprime_gated net ~source ~target in
  Obs.stop obs "stage.aux_graph" t0;
  let t0 = Obs.start obs in
  let pair = Aux.disjoint_pair ~obs ?workspace aux in
  Obs.stop obs "stage.disjoint_pair" t0;
  match pair with
  | None ->
    Obs.add obs "route.block.no_disjoint_pair" 1;
    None
  | Some ((p1, p2), _) ->
    let links1 = Aux.links_of_path aux p1 in
    let links2 = Aux.links_of_path aux p2 in
    let t0 = Obs.start obs in
    let r1 = refine net ?workspace ~obs ~source ~target links1
    and r2 = refine net ?workspace ~obs ~source ~target links2 in
    Obs.stop obs "stage.refine" t0;
    (match (r1, r2) with
     | Some (sl1, c1), Some (sl2, c2) ->
       let primary, backup = if c1 <= c2 then (sl1, sl2) else (sl2, sl1) in
       Some { Types.primary; backup = Some backup }
     | _ ->
       Obs.add obs "route.block.no_wavelength" 1;
       None)

let internal_nodes net p =
  match Slp.links p with
  | [] -> []
  | links ->
    (* every link head except the final one *)
    let rec go = function
      | [ _ ] | [] -> []
      | e :: rest -> Net.link_dst net e :: go rest
    in
    go links

let node_disjoint net sol =
  match sol.Types.backup with
  | None -> true
  | Some b ->
    let i1 = internal_nodes net sol.Types.primary in
    let i2 = internal_nodes net b in
    List.for_all (fun v -> not (List.exists (Int.equal v) i2)) i1

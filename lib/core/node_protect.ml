module Aux = Rr_wdm.Auxiliary
module Net = Rr_wdm.Network
module Layered = Rr_wdm.Layered
module Slp = Rr_wdm.Semilightpath

let refine net ?workspace ~source ~target links =
  match workspace with
  | Some ws ->
    Rr_util.Workspace.mark_reset ws (Net.n_links net);
    List.iter (Rr_util.Workspace.mark ws) links;
    Layered.optimal net
      ~link_enabled:(Rr_util.Workspace.marked ws)
      ~workspace:ws ~source ~target
  | None ->
    let set = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.replace set e ()) links;
    Layered.optimal net ~link_enabled:(Hashtbl.mem set) ~source ~target

let route ?workspace net ~source ~target =
  let aux = Aux.gprime_gated net ~source ~target in
  match Aux.disjoint_pair ?workspace aux with
  | None -> None
  | Some ((p1, p2), _) ->
    let links1 = Aux.links_of_path aux p1 in
    let links2 = Aux.links_of_path aux p2 in
    (match
       ( refine net ?workspace ~source ~target links1,
         refine net ?workspace ~source ~target links2 )
     with
     | Some (sl1, c1), Some (sl2, c2) ->
       let primary, backup = if c1 <= c2 then (sl1, sl2) else (sl2, sl1) in
       Some { Types.primary; backup = Some backup }
     | _ -> None)

let internal_nodes net p =
  match Slp.links p with
  | [] -> []
  | links ->
    (* every link head except the final one *)
    let rec go = function
      | [ _ ] | [] -> []
      | e :: rest -> Net.link_dst net e :: go rest
    in
    go links

let node_disjoint net sol =
  match sol.Types.backup with
  | None -> true
  | Some b ->
    let i1 = internal_nodes net sol.Types.primary in
    let i2 = internal_nodes net b in
    List.for_all (fun v -> not (List.mem v i2)) i1

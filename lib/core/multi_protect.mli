(** k-fold protection (extension beyond the paper).

    Generalises the primary/backup pair to [k] pairwise edge-disjoint
    semilightpaths — 1 working path plus [k-1] reserved backups, surviving
    any [k-1] simultaneous link failures.  A minimum-cost flow of [k] units
    on the auxiliary graph [G'] replaces Suurballe (which is exactly the
    [k = 2] case), and each flow path is refined to an optimal
    semilightpath in its induced subgraph, as in Section 3.3. *)

val route :
  Rr_wdm.Network.t ->
  k:int ->
  source:int ->
  target:int ->
  Rr_wdm.Semilightpath.t list option
(** [k >= 1] pairwise edge-disjoint semilightpaths ordered by cost, or
    [None] when fewer than [k] edge-disjoint routes exist. *)

val max_protection : Rr_wdm.Network.t -> source:int -> target:int -> int
(** Largest feasible [k] in the residual network (a max-flow value). *)

module Net = Rr_wdm.Network
module Obs = Rr_obs.Obs

type order =
  | Fifo
  | Shortest_first
  | Longest_first
  | Random of int

type outcome = {
  request : Types.request;
  solution : Types.solution option;
}

type result = {
  outcomes : outcome list;
  admitted : int;
  dropped : int;
  total_cost : float;
  final_load : float;
}

let order_name = function
  | Fifo -> "fifo"
  | Shortest_first -> "shortest-first"
  | Longest_first -> "longest-first"
  | Random _ -> "random"

let arrange net order requests =
  match order with
  | Fifo -> requests
  | Shortest_first | Longest_first ->
    (* One BFS per distinct source, not per request: batch workloads
       typically repeat sources, and each BFS is O(n + m). *)
    let trees = Hashtbl.create 8 in
    let dist_from src =
      match Hashtbl.find_opt trees src with
      | Some d -> d
      | None ->
        let d =
          Rr_graph.Traversal.bfs_dist
            ~enabled:(fun e -> Net.has_available net e)
            (Net.graph net) ~source:src
        in
        Hashtbl.add trees src d;
        d
    in
    let keyed =
      List.map
        (fun r ->
          let d = dist_from r.Types.src in
          let h =
            if r.Types.dst >= 0 && r.Types.dst < Array.length d then
              d.(r.Types.dst)
            else -1
          in
          ((if h < 0 then max_int else h), r))
        requests
    in
    let cmp (a, _) (b, _) =
      match order with Longest_first -> compare b a | _ -> compare a b
    in
    List.map snd (List.stable_sort cmp keyed)
  | Random seed ->
    let arr = Array.of_list requests in
    Rr_util.Rng.shuffle (Rr_util.Rng.create seed) arr;
    Array.to_list arr

let valid net req =
  let n = Net.n_nodes net in
  req.Types.src >= 0 && req.Types.src < n && req.Types.dst >= 0
  && req.Types.dst < n && req.Types.src <> req.Types.dst

let process ?(order = Fifo) ?obs net policy requests =
  let ordered = arrange net order requests in
  (* One incremental auxiliary-graph engine for the whole sequential
     sweep: each admission's sync recomputes only the links the previous
     allocation touched. *)
  let cache = Rr_wdm.Aux_cache.create net in
  let outcomes =
    List.map
      (fun req ->
        let solution =
          if valid net req then
            Router.admit ~aux_cache:cache ?obs net policy
              ~source:req.Types.src ~target:req.Types.dst
          else None
        in
        { request = req; solution })
      ordered
  in
  let admitted = List.length (List.filter (fun o -> Option.is_some o.solution) outcomes) in
  let total_cost =
    List.fold_left
      (fun acc o ->
        match o.solution with
        | Some sol -> acc +. Types.total_cost net sol
        | None -> acc)
      0.0 outcomes
  in
  {
    outcomes;
    admitted;
    dropped = List.length outcomes - admitted;
    total_cost;
    final_load = Net.network_load net;
  }

(* ------------------------------------------------------------------ *)
(* Speculative two-phase batch engine.

   Phase A routes every request read-only against a snapshot of the
   network as it stood when the batch arrived — requests do not see each
   other, so the phase parallelises perfectly.  Phase B walks the batch in
   order on the live network: a speculative solution still valid there is
   allocated as-is; one invalidated by an earlier admission is recomputed
   sequentially (the slow path); a request that found no route against the
   snapshot is dropped outright — admissions only consume resources, so a
   request infeasible on the snapshot is also infeasible on the live
   network.

   Phase B never depends on how Phase A was executed, so [route] and
   [route_parallel] produce identical results by construction. *)

let speculate_one ?obs snapshot cache ws policy req =
  if valid snapshot req then
    Router.route ~aux_cache:cache ~workspace:ws ?obs snapshot policy
      ~source:req.Types.src ~target:req.Types.dst
  else None

let apply ?obs net policy ordered speculative =
  let ws = Rr_util.Workspace.create () in
  (* The live-network engine is only needed on the slow path (a
     speculative solution invalidated by an earlier admission), so build
     it lazily: batches whose speculations all hold never pay for it. *)
  let cache = lazy (Rr_wdm.Aux_cache.create net) in
  let outcomes =
    List.map2
      (fun req spec ->
        let solution =
          match spec with
          | None -> None
          | Some sol -> (
            let r = { Types.src = req.Types.src; dst = req.Types.dst } in
            match Types.validate net r sol with
            | Ok () ->
              Types.allocate net sol;
              Some sol
            | Error _ ->
              (* An earlier admission consumed a wavelength this solution
                 needs: recompute against the live network. *)
              Router.admit ~aux_cache:(Lazy.force cache) ~workspace:ws ?obs
                net policy ~source:req.Types.src ~target:req.Types.dst)
        in
        { request = req; solution })
      ordered speculative
  in
  let admitted = List.length (List.filter (fun o -> Option.is_some o.solution) outcomes) in
  let total_cost =
    List.fold_left
      (fun acc o ->
        match o.solution with
        | Some sol -> acc +. Types.total_cost net sol
        | None -> acc)
      0.0 outcomes
  in
  {
    outcomes;
    admitted;
    dropped = List.length outcomes - admitted;
    total_cost;
    final_load = Net.network_load net;
  }

let route ?(order = Fifo) ?obs net policy requests =
  let ordered = arrange net order requests in
  let snapshot = Net.copy net in
  let cache = Rr_wdm.Aux_cache.create snapshot in
  let ws = Rr_util.Workspace.create () in
  let speculative =
    List.map (fun req -> speculate_one ?obs snapshot cache ws policy req) ordered
  in
  apply ?obs net policy ordered speculative

let route_parallel ?(order = Fifo) ?pool ?jobs ?(obs = Obs.null) net policy
    requests =
  let ordered = arrange net order requests in
  let jobs =
    match (pool, jobs) with
    | Some p, _ -> Parallel.size p
    | None, Some j -> j
    | None, None -> Parallel.default_jobs ()
  in
  if jobs < 1 then invalid_arg "Batch.route_parallel: jobs must be at least 1";
  let reqs = Array.of_list ordered in
  (* Each worker records into a private fork (tid = worker index + 1, the
     parent keeping tid 0); the forks are merged back in worker order after
     the join, so the combined registry is independent of how the atomic
     counter interleaved requests across workers.  All metric merges are
     integer sums/maxes, so merged totals equal a sequential run's. *)
  let forks =
    if Obs.enabled obs then
      Array.init jobs (fun i -> Obs.fork obs ~tid:(i + 1))
    else Array.make jobs Obs.null
  in
  let phase_a p =
    Parallel.map p
      ~worker:(fun i ->
        (* Per-worker snapshot and cache: the cache's epoch stamps are
           private to the worker's own snapshot, so speculative routing
           stays read-only with respect to the live network and the merged
           semantics are unchanged. *)
        let snapshot = Net.copy net in
        ( snapshot,
          Rr_wdm.Aux_cache.create snapshot,
          Rr_util.Workspace.create (),
          forks.(i) ))
      ~f:(fun (snapshot, cache, ws, fork) req ->
        speculate_one ~obs:fork snapshot cache ws policy req)
      reqs
  in
  let speculative =
    match pool with
    | Some p -> phase_a p
    | None -> Parallel.with_pool ~jobs phase_a
  in
  if Obs.enabled obs then Array.iter (fun f -> Obs.merge ~into:obs f) forks;
  apply ~obs net policy ordered (Array.to_list speculative)

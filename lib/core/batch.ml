module Net = Rr_wdm.Network

type order =
  | Fifo
  | Shortest_first
  | Longest_first
  | Random of int

type outcome = {
  request : Types.request;
  solution : Types.solution option;
}

type result = {
  outcomes : outcome list;
  admitted : int;
  dropped : int;
  total_cost : float;
  final_load : float;
}

let order_name = function
  | Fifo -> "fifo"
  | Shortest_first -> "shortest-first"
  | Longest_first -> "longest-first"
  | Random _ -> "random"

let hop_distance net req =
  let d =
    Rr_graph.Traversal.bfs_dist
      ~enabled:(fun e -> Net.has_available net e)
      (Net.graph net) ~source:req.Types.src
  in
  if req.Types.dst >= 0 && req.Types.dst < Array.length d then d.(req.Types.dst)
  else -1

let arrange net order requests =
  match order with
  | Fifo -> requests
  | Shortest_first | Longest_first ->
    let keyed =
      List.map
        (fun r ->
          let d = hop_distance net r in
          ((if d < 0 then max_int else d), r))
        requests
    in
    let cmp (a, _) (b, _) =
      match order with Longest_first -> compare b a | _ -> compare a b
    in
    List.map snd (List.stable_sort cmp keyed)
  | Random seed ->
    let arr = Array.of_list requests in
    Rr_util.Rng.shuffle (Rr_util.Rng.create seed) arr;
    Array.to_list arr

let valid net req =
  let n = Net.n_nodes net in
  req.Types.src >= 0 && req.Types.src < n && req.Types.dst >= 0
  && req.Types.dst < n && req.Types.src <> req.Types.dst

let process ?(order = Fifo) net policy requests =
  let ordered = arrange net order requests in
  let outcomes =
    List.map
      (fun req ->
        let solution =
          if valid net req then
            Router.admit net policy ~source:req.Types.src ~target:req.Types.dst
          else None
        in
        { request = req; solution })
      ordered
  in
  let admitted = List.length (List.filter (fun o -> o.solution <> None) outcomes) in
  let total_cost =
    List.fold_left
      (fun acc o ->
        match o.solution with
        | Some sol -> acc +. Types.total_cost net sol
        | None -> acc)
      0.0 outcomes
  in
  {
    outcomes;
    admitted;
    dropped = List.length outcomes - admitted;
    total_cost;
    final_load = Net.network_load net;
  }

module Net = Rr_wdm.Network
module Obs = Rr_obs.Obs
module Bitset = Rr_util.Bitset

type order =
  | Fifo
  | Shortest_first
  | Longest_first
  | Random of int

type outcome = {
  request : Types.request;
  solution : Types.solution option;
}

type result = {
  outcomes : outcome list;
  admitted : int;
  dropped : int;
  total_cost : float;
  final_load : float;
}

let order_name = function
  | Fifo -> "fifo"
  | Shortest_first -> "shortest-first"
  | Longest_first -> "longest-first"
  | Random _ -> "random"

let arrange net order requests =
  match order with
  | Fifo -> requests
  | Shortest_first | Longest_first ->
    (* One BFS per distinct source, not per request: batch workloads
       typically repeat sources, and each BFS is O(n + m). *)
    let trees = Hashtbl.create 8 in
    let dist_from src =
      match Hashtbl.find_opt trees src with
      | Some d -> d
      | None ->
        let d =
          Rr_graph.Traversal.bfs_dist
            ~enabled:(fun e -> Net.has_available net e)
            (Net.graph net) ~source:src
        in
        Hashtbl.add trees src d;
        d
    in
    let keyed =
      List.map
        (fun r ->
          let d = dist_from r.Types.src in
          let h =
            if r.Types.dst >= 0 && r.Types.dst < Array.length d then
              d.(r.Types.dst)
            else -1
          in
          ((if h < 0 then max_int else h), r))
        requests
    in
    let cmp (a, _) (b, _) =
      match order with Longest_first -> compare b a | _ -> compare a b
    in
    List.map snd (List.stable_sort cmp keyed)
  | Random seed ->
    let arr = Array.of_list requests in
    Rr_util.Rng.shuffle (Rr_util.Rng.create seed) arr;
    Array.to_list arr

let valid net req =
  let n = Net.n_nodes net in
  req.Types.src >= 0 && req.Types.src < n && req.Types.dst >= 0
  && req.Types.dst < n && req.Types.src <> req.Types.dst

let process ?(order = Fifo) ?obs net policy requests =
  let ordered = arrange net order requests in
  (* One incremental auxiliary-graph engine for the whole sequential
     sweep: each admission's sync recomputes only the links the previous
     allocation touched. *)
  let cache = Rr_wdm.Aux_cache.create net in
  let total = ref 0.0 in
  let outcomes =
    (* Request ids are batch positions: stage spans and journal events
       recorded during admission i are attributable to [ordered]'s i-th
       request. *)
    List.mapi
      (fun i req ->
        let solution =
          if valid net req then
            Router.admit ~aux_cache:cache ?obs ~req:i net policy
              ~source:req.Types.src ~target:req.Types.dst
          else None
        in
        (* Cost snapshot at the admission point: later admissions mutate
           the network, and the sum must be over each solution's cost as
           admitted. *)
        (match solution with
        | Some sol -> total := !total +. Types.total_cost net sol
        | None -> ());
        { request = req; solution })
      ordered
  in
  let admitted = List.length (List.filter (fun o -> Option.is_some o.solution) outcomes) in
  {
    outcomes;
    admitted;
    dropped = List.length outcomes - admitted;
    total_cost = !total;
    final_load = Net.network_load net;
  }

(* ------------------------------------------------------------------ *)
(* Speculative two-phase batch engine.

   Phase A routes every request read-only against a snapshot of the
   network as it stood when the batch arrived — requests do not see each
   other, so the phase parallelises perfectly.  Phase B commits the batch
   in order on the live network with the exact semantics of a sequential
   in-order walk (validate each speculative solution, allocate it if it
   still holds, recompute it on the live network otherwise); see [apply]
   for how that walk is itself parallelised without changing its
   meaning.  A request that found no route against the snapshot is
   dropped outright — admissions only consume resources, so a request
   infeasible on the snapshot is also infeasible on the live network.

   Phase B never depends on how Phase A was executed, so [route] and
   [route_parallel] produce identical results by construction. *)

(* [req] is the request's batch position: phase-A spans carry it so a
   request's speculation is attributable even after the worker forks are
   merged (ids survive [Obs.merge]). *)
let speculate_one ?(obs = Obs.null) ?req snapshot cache ws policy rq =
  (match req with Some id -> Obs.set_request obs id | None -> ());
  let result =
    if valid snapshot rq then
      Router.route ~aux_cache:cache ~workspace:ws ~obs snapshot policy
        ~source:rq.Types.src ~target:rq.Types.dst
    else None
  in
  (match req with Some _ -> Obs.clear_request obs | None -> ());
  result

(* ------------------------------------------------------------------ *)
(* Pool-resident worker shards.

   A shard is one worker's complete speculation state: a private network
   snapshot, the incremental auxiliary-graph engine bound to it, and a
   scratch workspace.  Building one costs a deep network copy plus a full
   [Aux_cache.create] — orders of magnitude more than routing a single
   request — so shards live in the pool's typed state slots and survive
   across [route_parallel] calls.  Reacquiring a shard for the same live
   network only replays the residual-state delta (per-link bitset diff,
   then an [Aux_cache.sync] that recomputes the touched links); a shard
   bound to a different network is rebuilt from scratch. *)

type shard = {
  sh_snap : Net.t;                    (* worker-private snapshot *)
  sh_cache : Rr_wdm.Aux_cache.t;      (* bound to [sh_snap] *)
  sh_ws : Rr_util.Workspace.t;
  sh_live : Net.t;                    (* the live network mirrored *)
}

let shard_slot : shard Parallel.slot = Parallel.slot ()

let fresh_shard live =
  let snap = Net.copy live in
  {
    sh_snap = snap;
    sh_cache = Rr_wdm.Aux_cache.create snap;
    sh_ws = Rr_util.Workspace.create ();
    sh_live = live;
  }

(* Replay the live network's residual state onto the snapshot link by
   link: releases for wavelengths freed since the last sync, allocations
   for ones consumed, failure flags last (a link failed on both sides can
   still have drifted usage — repair, patch, re-fail). *)
let resync_shard sh =
  let live = sh.sh_live and snap = sh.sh_snap in
  for e = 0 to Net.n_links live - 1 do
    let live_failed = Net.is_failed live e in
    let ul = Net.used live e and us = Net.used snap e in
    let drifted = (ul != us) && not (Bitset.equal ul us) in
    if Net.is_failed snap e && (drifted || not live_failed) then
      Net.repair_link snap e;
    if drifted then begin
      Bitset.iter (fun l -> Net.release snap e l) (Bitset.diff us ul);
      Bitset.iter (fun l -> Net.allocate snap e l) (Bitset.diff ul us)
    end;
    if live_failed && not (Net.is_failed snap e) then Net.fail_link snap e
  done;
  ignore (Rr_wdm.Aux_cache.sync sh.sh_cache : Rr_wdm.Aux_cache.sync_stats)

let shard_for pool live w =
  match Parallel.get_state pool shard_slot ~worker:w with
  | Some sh when sh.sh_live == live ->
    resync_shard sh;
    sh
  | _ ->
    let sh = fresh_shard live in
    Parallel.set_state pool shard_slot ~worker:w sh;
    sh

(* ------------------------------------------------------------------ *)
(* Phase B: optimistic commit with exact sequential semantics.

   The sequential walk admits solution [i] iff it validates against the
   live network *after* solutions [0..i-1] were handled.  Because
   [Types.validate]'s only residual-state dependence is per-hop
   wavelength availability, that verdict factors exactly:

     valid at turn i  <=>  valid against the network as of the round
                           start  AND  no hop (link, λ) was virtually
                           taken by an earlier still-valid solution.

   So each round shadow-validates the remaining suffix in order against
   the un-mutated network plus a [taken] set of virtually-allocated
   hops, stopping at the first index [k] that fails.  Solutions before
   [k] are exactly the ones the sequential walk would have admitted
   as-is; they are link-disjoint from each other in conflict groups, so
   they can be allocated in any order — including concurrently — without
   changing the final residual state ([Network.allocate] touches only
   the link's own slot).  Index [k] is then handled sequentially (its
   re-route may consume arbitrary links), and the next round restarts
   after it.  A batch whose speculations all hold commits in one round
   with zero sequential steps. *)

let commit_prefix ?pool ~obs net specs (sols : Types.solution option array)
    (costs : float array) lo hi =
  (* Committable members of [lo, hi) — indices carrying a solution. *)
  let members =
    List.filter (fun i -> Option.is_some specs.(i))
      (List.init (hi - lo) (fun k -> lo + k))
  in
  match members with
  | [] -> ()
  | _ ->
    let marr = Array.of_list members in
    let nm = Array.length marr in
    (* Conflict graph: two solutions conflict iff their footprints share
       a physical link.  Union-find over member positions, keyed by the
       first member seen on each link. *)
    let uf = Rr_util.Union_find.create nm in
    let link_owner = Hashtbl.create 64 in
    Array.iteri
      (fun mi i ->
        List.iter
          (fun (e, _) ->
            match Hashtbl.find_opt link_owner e with
            | None -> Hashtbl.replace link_owner e mi
            | Some mj -> ignore (Rr_util.Union_find.union uf mi mj : bool))
          (Router.footprint (Option.get specs.(i))))
      marr;
    (* Components in first-member order, members ascending inside. *)
    let comp_tbl = Hashtbl.create 16 in
    let comps_rev = ref [] in
    Array.iteri
      (fun mi i ->
        let r = Rr_util.Union_find.find uf mi in
        match Hashtbl.find_opt comp_tbl r with
        | Some cell -> cell := i :: !cell
        | None ->
          let cell = ref [ i ] in
          Hashtbl.replace comp_tbl r cell;
          comps_rev := cell :: !comps_rev)
      marr;
    let components =
      List.rev_map (fun cell -> List.rev !cell) !comps_rev
    in
    let multi =
      List.length (List.filter (fun c -> List.length c > 1) components)
    in
    Obs.add obs "batch.conflict.components" multi;
    Obs.add obs "batch.conflict.parallel_commits" nm;
    let commit_component c =
      List.iter
        (fun i ->
          let sol = Option.get specs.(i) in
          Types.allocate net sol;
          (* Cost snapshot at the allocation point (costs are functions
             of immutable link weights, so this equals — bit for bit —
             what a sequential walk would have recorded). *)
          costs.(i) <- Types.total_cost net sol;
          sols.(i) <- Some sol)
        c
    in
    (* Components are pairwise link-disjoint, so allocations from
       different components write disjoint [used] slots: committing them
       concurrently is race-free and order-independent. *)
    (match pool with
    | Some p when Parallel.size p > 1 && List.length components > 1 ->
      let carr = Array.of_list components in
      ignore
        (Parallel.map p
           ~worker:(fun _ -> ())
           ~f:(fun () c ->
             commit_component c;
             0)
           carr
          : int array)
    | _ -> List.iter commit_component components)

let apply ?pool ?(obs = Obs.null) net policy ordered speculative =
  let reqs = Array.of_list ordered in
  let specs = Array.of_list speculative in
  let n = Array.length reqs in
  if Array.length specs <> n then
    invalid_arg "Batch.apply: request/speculation length mismatch";
  let sols : Types.solution option array = Array.make n None in
  let costs = Array.make n 0.0 in
  let ws = Rr_util.Workspace.create () in
  (* The live-network engine is only needed on the slow path (a
     speculative solution invalidated by an earlier admission), so build
     it lazily: batches whose speculations all hold never pay for it. *)
  let cache = lazy (Rr_wdm.Aux_cache.create net) in
  let nw = Net.n_wavelengths net in
  let taken = Hashtbl.create 64 in
  let t_commit = Obs.start obs in
  let start = ref 0 in
  while !start < n do
    (* Shadow-validate [start, n) in order against the current live
       state plus the hops virtually taken this round. *)
    Hashtbl.clear taken;
    let first_fail = ref (-1) in
    let i = ref !start in
    while !i < n && !first_fail < 0 do
      (match specs.(!i) with
      | None -> ()
      | Some sol ->
        let fp = Router.footprint sol in
        let ok =
          List.for_all (fun (e, l) -> not (Hashtbl.mem taken ((e * nw) + l))) fp
          && (match Types.validate net reqs.(!i) sol with
             | Ok () -> true
             | Error _ -> false)
        in
        if ok then
          List.iter (fun (e, l) -> Hashtbl.replace taken ((e * nw) + l) ()) fp
        else first_fail := !i);
      incr i
    done;
    let stop = if !first_fail < 0 then n else !first_fail in
    commit_prefix ?pool ~obs net specs sols costs !start stop;
    if !first_fail < 0 then start := n
    else begin
      (* The sequential step: exactly the turn-[k] body of the in-order
         walk.  Its speculative solution no longer validates (a hop it
         needs was consumed — by an earlier round or this one's prefix),
         so it is recomputed against the live network. *)
      let k = !first_fail in
      (match specs.(k) with
      | None -> ()
      | Some sol -> (
        match Types.validate net reqs.(k) sol with
        | Ok () ->
          Types.allocate net sol;
          costs.(k) <- Types.total_cost net sol;
          sols.(k) <- Some sol
        | Error _ ->
          Obs.add obs "batch.conflict.fallbacks" 1;
          Obs.event obs ~a:k "journal.batch.fallback";
          let re =
            Router.admit ~aux_cache:(Lazy.force cache) ~workspace:ws ~obs
              ~req:k net policy ~source:reqs.(k).Types.src
              ~target:reqs.(k).Types.dst
          in
          (match re with
          | Some sol' -> costs.(k) <- Types.total_cost net sol'
          | None -> ());
          sols.(k) <- re));
      start := k + 1
    end
  done;
  Obs.stop obs "stage.commit" t_commit;
  let outcomes =
    List.init n (fun i -> { request = reqs.(i); solution = sols.(i) })
  in
  let admitted = ref 0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    match sols.(i) with
    | Some _ ->
      incr admitted;
      total := !total +. costs.(i)
    | None -> ()
  done;
  {
    outcomes;
    admitted = !admitted;
    dropped = n - !admitted;
    total_cost = !total;
    final_load = Net.network_load net;
  }

let route ?(order = Fifo) ?obs net policy requests =
  let ordered = arrange net order requests in
  let snapshot = Net.copy net in
  let cache = Rr_wdm.Aux_cache.create snapshot in
  let ws = Rr_util.Workspace.create () in
  let speculative =
    List.mapi
      (fun i req -> speculate_one ?obs ~req:i snapshot cache ws policy req)
      ordered
  in
  apply ?obs net policy ordered speculative

let route_parallel ?(order = Fifo) ?pool ?jobs ?(obs = Obs.null) net policy
    requests =
  let ordered = arrange net order requests in
  let run_with p =
    let size = Parallel.size p in
    (* Each worker records into a private fork (tid = worker index + 1,
       the parent keeping tid 0); the forks are merged back in worker
       order after the join, so the combined registry is independent of
       how the scheduler interleaved requests across workers.  All metric
       merges are integer sums/maxes, so merged totals equal a sequential
       run's. *)
    let forks =
      if Obs.enabled obs then
        Array.init size (fun i -> Obs.fork obs ~tid:(i + 1))
      else Array.make size Obs.null
    in
    let reqs = Array.of_list (List.mapi (fun i req -> (i, req)) ordered) in
    let speculative =
      Parallel.map p
        ~worker:(fun i -> (shard_for p net i, forks.(i)))
        ~f:(fun (sh, fork) (i, req) ->
          speculate_one ~obs:fork ~req:i sh.sh_snap sh.sh_cache sh.sh_ws policy
            req)
        reqs
    in
    if Obs.enabled obs then Array.iter (fun f -> Obs.merge ~into:obs f) forks;
    apply ~pool:p ~obs net policy ordered (Array.to_list speculative)
  in
  match pool with
  | Some p -> run_with p
  | None ->
    let jobs =
      match jobs with Some j -> j | None -> Parallel.default_jobs ()
    in
    if jobs < 1 then
      invalid_arg "Batch.route_parallel: jobs must be at least 1";
    Parallel.with_pool ~obs ~jobs run_with

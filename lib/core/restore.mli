(** Restoration: the failure-time counterpart of admission.

    When a failure hits a connection's working path, the owner (simulator
    event loop, [rr_serve] burst handler, check harness) calls {!restore}
    with the still-allocated path and its protection.  The engine

    - splices the covering segment detour in place
      ({!Partial_protect.restore_segments}) for segment-protected
      connections,
    - switches to the reserved full backup when it survived,
    - re-routes from scratch on the residual network otherwise (through
      [Router.admit], so an {!Rr_wdm.Aux_cache} makes the re-route
      incremental),

    and drops the connection only when the residual network has no path
    left.

    Probes: every call increments [restore.attempt] and exactly one of
    [restore.ok] / [restore.dropped]; the chosen mechanism additionally
    bumps [restore.switch] (backup promotion or segment splice) or
    [restore.reroute], and a successful fresh backup reservation bumps
    [restore.reprovision].  Journal events mirror the outcome:
    [journal.restore.switch] / [journal.restore.reroute] /
    [journal.restore.reprovision] (a=source, b=target) and
    [journal.restore.drop] (a=source, b=target). *)

type outcome =
  | Switched of Rr_wdm.Semilightpath.t * Partial_protect.protection
      (** Reserved protection absorbed the failure: the new working path
          is the promoted backup or the spliced primary (its resources
          stay allocated; the dead hops' were returned).  The protection
          is a freshly reserved full backup when [reprovision] succeeded,
          [Unprotected] otherwise. *)
  | Rerouted of Rr_wdm.Semilightpath.t * Partial_protect.protection
      (** Protection dead, uncovering, or absent; a from-scratch admission
          on the residual network succeeded.  All prior resources were
          returned first. *)
  | Dropped
      (** No protection and no residual route: every resource of the old
          state was returned and the connection is gone. *)

val restore :
  ?aux_cache:Rr_wdm.Aux_cache.t ->
  ?workspace:Rr_util.Workspace.t ->
  ?obs:Rr_obs.Obs.t ->
  ?req:int ->
  ?reprovision:bool ->
  Rr_wdm.Network.t ->
  Router.policy ->
  request:Types.request ->
  primary:Rr_wdm.Semilightpath.t ->
  protection:Partial_protect.protection ->
  outcome
(** [restore net policy ~request ~primary ~protection] restores a
    connection after a failure hit its working path.  Precondition: every
    wavelength of [primary] and of the protection's paths is still
    allocated on [net] (failed links keep their allocations; release
    happens here).  [reprovision] (default [false]) asks for a fresh full
    backup — edge-disjoint from the new working path — after a successful
    switch.  [policy] and [req] are used by the re-route path exactly as
    in [Router.admit]. *)

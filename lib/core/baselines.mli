(** Baseline routing policies the paper's algorithms are compared against.

    - {!two_step}: the classic remove-and-reroute heuristic — route the
      optimal semilightpath, delete its links, route again.  Cheap, but it
      fails on "trap" topologies where the shortest path blocks every
      disjoint partner (the standard motivation for Suurballe).
    - {!unprotected}: a single optimal semilightpath, no backup — the
      passive-restoration strawman of Section 1.
    - {!first_fit}: hop-count shortest route with first-fit wavelength
      assignment, then the same on the remaining links — the
      separate-RWA-decisions strawman. *)

val two_step :
  ?workspace:Rr_util.Workspace.t ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  Types.solution option

val unprotected :
  ?workspace:Rr_util.Workspace.t ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  Types.solution option

val first_fit :
  ?workspace:Rr_util.Workspace.t ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  Types.solution option

val most_used_fit :
  ?workspace:Rr_util.Workspace.t ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  Types.solution option
(** Hop-count routing with *packing* wavelength assignment: prefer the
    wavelength already used on the most links (cf. adaptive RWA, the
    paper's ref [16]). *)

val least_used_fit :
  ?workspace:Rr_util.Workspace.t ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  Types.solution option
(** Spreading assignment: prefer the least-used wavelength. *)

(** Static provisioning: robust routes for a demand set known in advance.

    The paper distinguishes its *dynamic* setting from the *static*
    fault-tolerant design problem of its references [17], [3], where all
    demands are given up front and an offline algorithm "can afford to be
    computationally expensive".  This module provides that companion:

    - {!sequential}: route the demands one by one (any {!Router.policy}),
      in a configurable order — the online algorithm replayed offline;
    - {!local_search}: iterative improvement over a sequential start by
      pairwise ruin-and-recreate — tear two demands down, re-insert them
      in both orders, keep strict improvements of the chosen objective
      (single-demand re-insertion provably cannot improve the cost
      objective over the greedy start, so the moves are pairwise);
    - {!ilp_joint}: the exact joint integer program for *two* demands on
      tiny instances (the natural extension of the paper's Section 3.1 —
      one [x]/[y] variable family per demand, shared link-capacity
      constraints per wavelength), used to certify the heuristics.

    All functions work on a private copy of the network. *)

type objective = Min_total_cost | Min_load_then_cost

type placement = {
  request : Types.request;
  solution : Types.solution option;  (** [None] = could not be served *)
}

type plan = {
  placements : placement list;
  served : int;
  total_cost : float;
  network_load : float;
  iterations : int;  (** local-search improvement steps performed *)
}

val sequential :
  ?order:Batch.order ->
  ?policy:Router.policy ->
  Rr_wdm.Network.t ->
  Types.request list ->
  plan
(** One pass, no improvement ([iterations = 0]). *)

val local_search :
  ?order:Batch.order ->
  ?policy:Router.policy ->
  ?objective:objective ->
  ?max_rounds:int ->
  Rr_wdm.Network.t ->
  Types.request list ->
  plan
(** Sequential start, then pairwise ruin-and-recreate while the objective
    strictly improves (serving more demands always dominates).  Default
    objective [Min_total_cost], [max_rounds] 20 sweeps. *)

val ilp_joint :
  ?node_limit:int ->
  Rr_wdm.Network.t ->
  Types.request ->
  Types.request ->
  ((Types.solution * Types.solution) * float) option
(** Exact minimum total cost of serving both requests simultaneously
    (each with primary + backup; all four paths pairwise limited by
    per-link-per-wavelength capacity 1; the two paths of each request
    edge-disjoint).  [None] if the pair cannot be served together. *)

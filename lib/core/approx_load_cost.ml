module Aux = Rr_wdm.Auxiliary
module Net = Rr_wdm.Network
module Layered = Rr_wdm.Layered
module Slp = Rr_wdm.Semilightpath
module Obs = Rr_obs.Obs

type result = {
  theta : float;
  bottleneck : float;
  solution : Types.solution;
}

(* Same screening as {!Approx_cost.refine}: a layered walk that revisits a
   physical link is not a semilightpath and cannot be admitted. *)
let refine net ?workspace ?(obs = Obs.null) ~source ~target links =
  let result =
    match workspace with
    | Some ws ->
      Rr_util.Workspace.mark_reset ws (Net.n_links net);
      List.iter (Rr_util.Workspace.mark ws) links;
      Layered.optimal net
        ~link_enabled:(Rr_util.Workspace.marked ws)
        ~obs ~workspace:ws ~source ~target
    | None ->
      let set = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace set e ()) links;
      (* lint: no-thread — ?workspace is statically None in this branch *)
      Layered.optimal net ~link_enabled:(Hashtbl.mem set) ~obs ~source ~target
  in
  match result with
  | Some (p, _) when not (Slp.link_simple p) ->
    Obs.add obs "refine.nonsimple" 1;
    None
  | r -> r

let route ?aux_cache ?base ?resolution ?workspace ?(obs = Obs.null) net ~source
    ~target =
  (* Phase 1 syncs the cache; the network is untouched between phases, so
     the G_rc view below needs no second sync. *)
  match
    Mincog.route ?aux_cache ?base ?resolution ?workspace ~obs net ~source
      ~target
  with
  | None -> None
  | Some phase1 ->
    let theta = phase1.Mincog.theta in
    let aux, enabled =
      match aux_cache with
      | Some cache ->
        let aux, enabled = Rr_wdm.Aux_cache.grc_view cache ~theta ~source ~target in
        (aux, Some enabled)
      | None ->
        let t0 = Obs.start obs in
        let aux = Aux.grc net ~theta ~source ~target in
        Obs.stop obs "stage.aux_graph" t0;
        (aux, None)
    in
    (match Aux.disjoint_pair ~obs ?workspace ?enabled aux with
     | None ->
       (* ϑ was feasible in phase 1, so G_rc (same topology as G_c) must
          admit a pair; fall back to the phase-1 routes defensively. *)
       Some
         {
           theta;
           bottleneck = phase1.Mincog.bottleneck;
           solution = phase1.Mincog.solution;
         }
     | Some ((p1, p2), _) ->
       let links1 = Aux.links_of_path aux p1 in
       let links2 = Aux.links_of_path aux p2 in
       (match
          ( refine net ?workspace ~obs ~source ~target links1,
            refine net ?workspace ~obs ~source ~target links2 )
        with
        | Some (sl1, c1), Some (sl2, c2) ->
          let primary, backup = if c1 <= c2 then (sl1, sl2) else (sl2, sl1) in
          let bottleneck =
            List.fold_left
              (fun acc e -> Float.max acc (Net.link_load net e))
              0.0 (links1 @ links2)
          in
          Some
            { theta; bottleneck; solution = { Types.primary; backup = Some backup } }
        | _ ->
          Some
            {
              theta;
              bottleneck = phase1.Mincog.bottleneck;
              solution = phase1.Mincog.solution;
            }))

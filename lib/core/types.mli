(** Requests and robust-routing solutions. *)

type request = { src : int; dst : int }

type solution = {
  primary : Rr_wdm.Semilightpath.t;
  backup : Rr_wdm.Semilightpath.t option;
      (** [None] only for deliberately unprotected baselines. *)
}

val total_cost : Rr_wdm.Network.t -> solution -> float
(** Cost sum of both paths (Eq. 1 each) — the paper's objective. *)

val primary_cost : Rr_wdm.Network.t -> solution -> float
val backup_cost : Rr_wdm.Network.t -> solution -> float
(** 0 when unprotected. *)

val validate :
  ?require_available:bool ->
  Rr_wdm.Network.t ->
  request ->
  solution ->
  (unit, string) result
(** Both paths valid semilightpaths from [src] to [dst] and mutually
    edge-disjoint (when a backup exists). *)

val allocate : Rr_wdm.Network.t -> solution -> unit
(** Reserve every wavelength of both paths (the paper's *activate*
    protection: backup resources are held from admission time). *)

val release : Rr_wdm.Network.t -> solution -> unit

val pp : Rr_wdm.Network.t -> Format.formatter -> solution -> unit

module Aux = Rr_wdm.Auxiliary
module Net = Rr_wdm.Network
module Layered = Rr_wdm.Layered
module Digraph = Rr_graph.Digraph

let refine net ~source ~target links =
  let set = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace set e ()) links;
  Layered.optimal net ~link_enabled:(Hashtbl.mem set) ~source ~target

let max_protection net ~source ~target =
  let aux = Aux.gprime net ~source ~target in
  Rr_graph.Flow.disjoint_paths_count aux.Aux.graph ~source:aux.Aux.source
    ~target:aux.Aux.sink

let route net ~k ~source ~target =
  if k < 1 then invalid_arg "Multi_protect.route: k must be >= 1";
  let aux = Aux.gprime net ~source ~target in
  let g = aux.Aux.graph in
  match
    Rr_graph.Flow.min_cost_flow g
      ~weight:(fun a -> aux.Aux.weight.(a))
      ~capacity:(fun _ -> 1)
      ~source:aux.Aux.source ~target:aux.Aux.sink ~amount:k
  with
  | None -> None
  | Some (flow, _) ->
    (* Decompose the k-unit flow into k arc-disjoint s'-t'' walks: a greedy
       walk over flow-carrying arcs can only get stuck at t''. *)
    let adj = Array.make (Digraph.n_nodes g) [] in
    for a = Digraph.n_edges g - 1 downto 0 do
      if flow.(a) > 0 then adj.(Digraph.src g a) <- a :: adj.(Digraph.src g a)
    done;
    let extract () =
      let rec walk u acc =
        if u = aux.Aux.sink then List.rev acc
        else
          match adj.(u) with
          | [] -> invalid_arg "Multi_protect: flow decomposition stuck"
          | a :: rest ->
            adj.(u) <- rest;
            walk (Digraph.dst g a) (a :: acc)
      in
      walk aux.Aux.source []
    in
    let rec collect i acc =
      if i = 0 then List.rev acc
      else begin
        let aux_path = extract () in
        let links = Aux.links_of_path aux aux_path in
        match refine net ~source ~target links with
        | Some (slp, c) -> collect (i - 1) ((slp, c) :: acc)
        | None -> raise Exit
      end
    in
    (try
       let paths = collect k [] in
       let sorted = List.sort (fun (_, a) (_, b) -> Float.compare a b) paths in
       Some (List.map fst sorted)
     with Exit -> None)

module Slp = Rr_wdm.Semilightpath

type request = { src : int; dst : int }

type solution = {
  primary : Slp.t;
  backup : Slp.t option;
}

let primary_cost net s = Slp.cost net s.primary

let backup_cost net s =
  match s.backup with None -> 0.0 | Some b -> Slp.cost net b

let total_cost net s = primary_cost net s +. backup_cost net s

let validate ?require_available net req s =
  let ( let* ) r f = Result.bind r f in
  let* () =
    Result.map_error
      (fun e -> "primary: " ^ e)
      (Slp.validate ?require_available net ~source:req.src ~target:req.dst s.primary)
  in
  match s.backup with
  | None -> Ok ()
  | Some b ->
    let* () =
      Result.map_error
        (fun e -> "backup: " ^ e)
        (Slp.validate ?require_available net ~source:req.src ~target:req.dst b)
    in
    if Slp.edge_disjoint s.primary b then Ok ()
    else Error "primary and backup share a physical link"

let allocate net s =
  Slp.allocate net s.primary;
  match s.backup with
  | None -> ()
  | Some b -> (
    try Slp.allocate net b
    with e ->
      (* keep all-or-nothing semantics *)
      Slp.release net s.primary;
      raise e)

let release net s =
  Slp.release net s.primary;
  match s.backup with None -> () | Some b -> Slp.release net b

let pp net fmt s =
  Format.fprintf fmt "@[<v>primary: %a (cost %.3f)" (Slp.pp net) s.primary
    (primary_cost net s);
  (match s.backup with
   | None -> Format.fprintf fmt "@,backup: none"
   | Some b -> Format.fprintf fmt "@,backup:  %a (cost %.3f)" (Slp.pp net) b (Slp.cost net b));
  Format.fprintf fmt "@]"

module Bitset = Rr_util.Bitset
module Net = Rr_wdm.Network
module Slp = Rr_wdm.Semilightpath
module Obs = Rr_obs.Obs

type exposure = All | Only of Bitset.t

type segment = { seg_lo : int; seg_hi : int; seg_detour : Slp.t }

type protection =
  | Unprotected
  | Full of Slp.t
  | Segments of segment list

let backup_hops = function
  | Unprotected -> 0
  | Full b -> List.length b.Slp.hops
  | Segments segs ->
    List.fold_left
      (fun acc s -> acc + List.length s.seg_detour.Slp.hops)
      0 segs

let cost net = function
  | Unprotected -> 0.0
  | Full b -> Slp.cost net b
  | Segments segs ->
    List.fold_left
      (fun acc s -> acc +. Slp.cost net s.seg_detour)
      0.0 segs

let exposure_of_rates rates =
  if Array.for_all (fun r -> r > 0.0) rates then All
  else begin
    let s = ref (Bitset.create (Array.length rates)) in
    Array.iteri (fun e r -> if r > 0.0 then s := Bitset.add !s e) rates;
    Only !s
  end

let exposed exposure e =
  match exposure with All -> true | Only s -> Bitset.mem s e

(* Maximal runs of consecutive exposed hops, as inclusive (lo, hi) index
   pairs in primary-hop order. *)
let exposed_runs exposure hops =
  let arr = Array.of_list hops in
  let n = Array.length arr in
  let runs = ref [] in
  let i = ref 0 in
  while !i < n do
    if exposed exposure arr.(!i).Slp.edge then begin
      let lo = !i in
      while !i < n && exposed exposure arr.(!i).Slp.edge do
        incr i
      done;
      runs := (lo, !i - 1) :: !runs
    end
    else incr i
  done;
  List.rev !runs

let splice primary seg =
  let before = List.filteri (fun i _ -> i < seg.seg_lo) primary.Slp.hops in
  let after = List.filteri (fun i _ -> i > seg.seg_hi) primary.Slp.hops in
  { Slp.hops = before @ seg.seg_detour.Slp.hops @ after }

let admit ?aux_cache ?workspace ?(obs = Obs.null) ~exposure net ~source ~target =
  let request = { Types.src = source; dst = target } in
  (* The full edge-disjoint candidate is computed up front, on the same
     residual state the fallback path restores to — so falling back never
     needs a second Suurballe pass. *)
  let full = Approx_cost.route ?aux_cache ?workspace ~obs net ~source ~target in
  let full_backup_hops =
    match full with
    | Some { Types.backup = Some b; _ } -> Some (List.length b.Slp.hops)
    | Some { Types.backup = None; _ } | None -> None
  in
  let fallback () =
    match full with
    | Some sol
      when (match Types.validate net request sol with
            | Ok () -> true
            | Error _ -> false) ->
      Types.allocate net sol;
      Obs.add obs "survive.partial.full_fallback" 1;
      let protection =
        match sol.Types.backup with Some b -> Full b | None -> Unprotected
      in
      Some (sol.Types.primary, protection)
    | Some _ | None -> None
  in
  let segmented =
    match Rr_wdm.Layered.optimal ?workspace ~obs net ~source ~target with
    | Some (primary, _) when Slp.link_simple primary -> (
      match exposed_runs exposure primary.Slp.hops with
      | [] ->
        (* No failure-exposed hop: the primary alone already survives
           every admissible failure.  Zero backup beats any pair. *)
        Slp.allocate net primary;
        Some (primary, [])
      | runs ->
        Slp.allocate net primary;
        let primary_links = Hashtbl.create 8 in
        List.iter
          (fun e -> Hashtbl.replace primary_links e ())
          (Slp.links primary);
        let link_enabled e = not (Hashtbl.mem primary_links e) in
        let arr = Array.of_list primary.Slp.hops in
        (* Detours are reserved one at a time, so a later detour sees the
           earlier ones' wavelengths as residual state and cannot collide
           with them.  [Error acc] carries the detours already allocated
           when a later run fails, so they can be returned. *)
        let rec reserve acc = function
          | [] -> Ok (List.rev acc)
          | (lo, hi) :: rest -> (
            let s = Net.link_src net arr.(lo).Slp.edge in
            let t = Net.link_dst net arr.(hi).Slp.edge in
            (* A node-revisiting primary can produce a degenerate run
               whose endpoints coincide; no detour exists for it. *)
            if s = t then Error acc
            else
              match
                Rr_wdm.Layered.optimal ?workspace ~obs ~link_enabled net
                  ~source:s ~target:t
              with
              | Some (d, _) when Slp.link_simple d -> (
                let seg = { seg_lo = lo; seg_hi = hi; seg_detour = d } in
                (* The spliced path is the post-failure working path; its
                   junction conversions must be legal now, not at switch
                   time. *)
                match
                  Slp.validate ~require_available:false net ~source ~target
                    (splice primary seg)
                with
                | Ok () ->
                  Slp.allocate net d;
                  reserve (seg :: acc) rest
                | Error _ -> Error acc)
              | Some _ | None -> Error acc)
        in
        (match reserve [] runs with
         | Ok segs -> Some (primary, segs)
         | Error acc ->
           List.iter (fun seg -> Slp.release net seg.seg_detour) acc;
           Slp.release net primary;
           None))
    | Some _ | None -> None
  in
  match segmented with
  | None -> fallback ()
  | Some (primary, segs) ->
    let seg_hops =
      List.fold_left
        (fun acc s -> acc + List.length s.seg_detour.Slp.hops)
        0 segs
    in
    let pays =
      match full_backup_hops with None -> true | Some fh -> seg_hops < fh
    in
    if pays then begin
      Obs.add obs "survive.partial.segmented" 1;
      Some (primary, Segments segs)
    end
    else begin
      Slp.release net primary;
      List.iter (fun s -> Slp.release net s.seg_detour) segs;
      fallback ()
    end

let restore_segments ?(obs = Obs.null) net ~primary ~segments =
  let arr = Array.of_list primary.Slp.hops in
  let failed_idx = ref [] in
  Array.iteri
    (fun i h -> if Net.is_failed net h.Slp.edge then failed_idx := i :: !failed_idx)
    arr;
  match !failed_idx with
  | [] -> None
  | idxs -> (
    let covering =
      List.find_opt
        (fun s -> List.for_all (fun i -> i >= s.seg_lo && i <= s.seg_hi) idxs)
        segments
    in
    match covering with
    | None -> None
    | Some seg ->
      let detour_intact =
        List.for_all
          (fun e -> not (Net.is_failed net e))
          (Slp.links seg.seg_detour)
      in
      if not detour_intact then None
      else begin
        let spliced = splice primary seg in
        let source = Slp.source net primary in
        let target = Slp.target net primary in
        match
          Slp.validate ~require_available:false net ~source ~target spliced
        with
        | Error _ -> None
        | Ok () ->
          let replaced =
            List.filteri
              (fun i _ -> i >= seg.seg_lo && i <= seg.seg_hi)
              primary.Slp.hops
          in
          Slp.release net { Slp.hops = replaced };
          List.iter
            (fun s ->
              if not (Int.equal s.seg_lo seg.seg_lo) then
                Slp.release net s.seg_detour)
            segments;
          Obs.add obs "survive.splice" 1;
          Obs.event obs ~a:source ~b:target "journal.survive.splice";
          Some spliced
      end)

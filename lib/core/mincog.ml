module Aux = Rr_wdm.Auxiliary
module Net = Rr_wdm.Network
module Layered = Rr_wdm.Layered
module Slp = Rr_wdm.Semilightpath
module Obs = Rr_obs.Obs

type result = {
  theta : float;
  bottleneck : float;
  solution : Types.solution;
}

let theta_bounds net =
  let lo = ref infinity and hi = ref 0.0 in
  for e = 0 to Net.n_links net - 1 do
    if Net.has_available net e then begin
      let n_e = float_of_int (Rr_util.Bitset.cardinal (Net.lambdas net e)) in
      let u_e = float_of_int (Rr_util.Bitset.cardinal (Net.used net e)) in
      let v = (u_e +. 1.0) /. n_e in
      lo := Float.min !lo v;
      hi := Float.max !hi v
    end
  done;
  if Float.equal !lo infinity then (1.0, 1.0) else (!lo, !hi)

(* Same screening as {!Approx_cost.refine}: a layered walk that revisits a
   physical link is not a semilightpath and cannot be admitted. *)
let refine net ?workspace ?(obs = Obs.null) ~source ~target links =
  let result =
    match workspace with
    | Some ws ->
      Rr_util.Workspace.mark_reset ws (Net.n_links net);
      List.iter (Rr_util.Workspace.mark ws) links;
      Layered.optimal net
        ~link_enabled:(Rr_util.Workspace.marked ws)
        ~obs ~workspace:ws ~source ~target
    | None ->
      let set = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace set e ()) links;
      (* lint: no-thread — ?workspace is statically None in this branch *)
      Layered.optimal net ~link_enabled:(Hashtbl.mem set) ~obs ~source ~target
  in
  match result with
  | Some (p, _) when not (Slp.link_simple p) ->
    Obs.add obs "refine.nonsimple" 1;
    None
  | r -> r

(* Try one threshold: build (or view) G_c, Suurballe, refine both paths.
   With a cache the caller has already synced it for this request; each
   threshold probe only swaps the filter predicate. *)
let attempt ?aux_cache ?workspace ?(obs = Obs.null) net ~theta ~base ~source
    ~target =
  let aux, enabled =
    match aux_cache with
    | Some cache ->
      let aux, enabled =
        Rr_wdm.Aux_cache.gc_view cache ~theta ~base ~source ~target ()
      in
      (aux, Some enabled)
    | None ->
      let t0 = Obs.start obs in
      let aux = Aux.gc net ~theta ~base ~source ~target () in
      Obs.stop obs "stage.aux_graph" t0;
      (aux, None)
  in
  let t0 = Obs.start obs in
  let pair = Aux.disjoint_pair ~obs ?workspace ?enabled aux in
  Obs.stop obs "stage.disjoint_pair" t0;
  match pair with
  | None -> None
  | Some ((p1, p2), _) ->
    let links1 = Aux.links_of_path aux p1 in
    let links2 = Aux.links_of_path aux p2 in
    (match
       ( refine net ?workspace ~obs ~source ~target links1,
         refine net ?workspace ~obs ~source ~target links2 )
     with
     | Some (sl1, c1), Some (sl2, c2) ->
       let primary, backup = if c1 <= c2 then (sl1, sl2) else (sl2, sl1) in
       let bottleneck =
         List.fold_left
           (fun acc e -> Float.max acc (Net.link_load net e))
           0.0 (links1 @ links2)
       in
       Some { theta; bottleneck; solution = { Types.primary; backup = Some backup } }
     | _ -> None)

let route ?aux_cache ?(base = 16.0) ?(resolution = 10) ?workspace
    ?(obs = Obs.null) net ~source ~target =
  (match aux_cache with
   | Some cache ->
     if Rr_wdm.Aux_cache.network cache != net then
       invalid_arg "Mincog: aux_cache bound to a different network";
     ignore (Rr_wdm.Aux_cache.sync ~obs cache : Rr_wdm.Aux_cache.sync_stats)
   | None -> ());
  let theta_min, theta_max = theta_bounds net in
  let delta = theta_max -. theta_min in
  (* Thresholds in increasing order: ϑ_min, then geometrically growing
     increments, ϑ_max last.  A threshold of exactly (U+1)/N admits links
     of load U/N since inclusion is strict (U/N < ϑ). *)
  let candidates =
    if delta <= 0.0 then [ theta_max ]
    else
      (theta_min
       :: List.init resolution (fun i ->
              theta_min +. (delta /. Float.pow 2.0 (float_of_int (resolution - 1 - i)))))
  in
  let rec try_all = function
    | [] -> None
    | theta :: rest -> (
      match attempt ?aux_cache ?workspace ~obs net ~theta ~base ~source ~target with
      | Some r -> Some r
      | None -> try_all rest)
  in
  match try_all candidates with
  | None ->
    Obs.add obs "route.block.no_disjoint_pair" 1;
    None
  | r -> r

let min_bottleneck ?aux_cache ?workspace net ~source ~target =
  (match aux_cache with
   | Some cache ->
     if Rr_wdm.Aux_cache.network cache != net then
       invalid_arg "Mincog: aux_cache bound to a different network";
     ignore (Rr_wdm.Aux_cache.sync cache : Rr_wdm.Aux_cache.sync_stats)
   | None -> ());
  (* Distinct realised load levels, ascending; feasibility (existence of an
     edge-disjoint pair among links of load <= level) is monotone, so the
     smallest feasible level is found by linear scan with early exit (the
     level list is tiny: at most W+1 values). *)
  let levels =
    let tbl = Hashtbl.create 16 in
    for e = 0 to Net.n_links net - 1 do
      if Net.has_available net e then Hashtbl.replace tbl (Net.link_load net e) ()
    done;
    (* lint: ordered — the fold result is sorted before use *)
    List.sort Float.compare (Hashtbl.fold (fun l () acc -> l :: acc) tbl [])
  in
  let attempt_level level =
    (* ϑ strictly above [level] but below the next level. *)
    attempt ?aux_cache ?workspace net ~theta:(level +. 1e-9) ~base:16.0 ~source
      ~target
  in
  let rec go = function
    | [] -> None
    | level :: rest -> (
      match attempt_level level with
      | Some r -> Some (r.bottleneck, r.solution)
      | None -> go rest)
  in
  go levels

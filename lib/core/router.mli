(** Unified routing facade: one entry point per policy, plus admission
    (route + validate + allocate) for the simulator. *)

type policy =
  | Cost_approx      (** Section 3.3 auxiliary-graph approximation *)
  | Load_aware       (** Section 4.1 MinCog (load only) *)
  | Load_cost        (** Section 4.2 two-phase (load then cost) *)
  | Two_step         (** remove-and-reroute baseline *)
  | First_fit        (** hop-count + first-fit RWA baseline *)
  | Most_used        (** hop-count + packing wavelength assignment *)
  | Least_used       (** hop-count + spreading wavelength assignment *)
  | Unprotected      (** single path, passive restoration *)
  | Node_protect     (** internally node-disjoint pair (extension) *)
  | Exact            (** combinatorial optimum (small instances only) *)

val all_policies : policy list
val policy_name : policy -> string
val policy_of_string : string -> policy option

val route :
  ?aux_cache:Rr_wdm.Aux_cache.t ->
  ?workspace:Rr_util.Workspace.t ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  policy ->
  source:int ->
  target:int ->
  Types.solution option
(** Compute a robust route on the residual network; no allocation.
    [workspace] supplies reusable scratch arrays to every search the policy
    runs (ignored by [Exact]); see {!Rr_util.Workspace}.  [aux_cache] is an
    incremental auxiliary-graph engine bound to [net] (see
    {!Rr_wdm.Aux_cache}): the auxiliary-graph-based policies ([Cost_approx],
    [Load_aware], [Load_cost]) then sync it and route over its views —
    byte-identical results, no per-request [G'] rebuild; other policies
    ignore it.  [obs] is threaded through the policy pipeline, recording
    per-stage spans ([stage.*]), kernel spans and counters ([kernel.*],
    [heap.*], [conv.expansions], [workspace.*]) and blocking causes
    ([route.block.*]). *)

val admit :
  ?aux_cache:Rr_wdm.Aux_cache.t ->
  ?workspace:Rr_util.Workspace.t ->
  ?obs:Rr_obs.Obs.t ->
  ?req:int ->
  Rr_wdm.Network.t ->
  policy ->
  source:int ->
  target:int ->
  Types.solution option
(** {!route}, then validate against the residual network and allocate all
    wavelengths of both paths ([stage.validate] / [stage.allocate] spans).
    An admitted request increments [admit.ok]; a refusal increments
    [admit.blocked].  A solution the validator rejects — an algorithm
    defect, not an operational condition — is additionally counted under
    [admit.reject.validator] and refused rather than raised, so long
    simulations survive and the defect shows up in exported metrics (the
    shipped policies keep this counter at zero).

    [req] is the request id for request-scoped observability: the whole
    admission runs inside [Obs.set_request]/[Obs.clear_request], so every
    stage span is attributable (and subject to the context's sampling
    rate), the admission outcome lands in the flight recorder as
    [journal.admit.ok] (a=source, b=target) or [journal.admit.blocked]
    (a = blocking cause: 1 no_disjoint_pair, 2 no_wavelength, 3 no_route,
    4 validator reject), and the end-to-end latency feeds the [req.admit]
    histogram plus the sliding window via [Obs.stop_admit].  Without
    [req] the same probes fire with request id -1. *)

val footprint : Types.solution -> (int * int) list
(** The [(link, wavelength)] hops the solution would allocate — primary
    hops then backup hops, in path order.  Each physical link appears at
    most once across the whole list (link simplicity within a path,
    edge-disjointness across the pair), so two solutions conflict on
    residual state iff their footprints share a link.  Used by
    {!Batch}'s optimistic commit to build the conflict graph. *)

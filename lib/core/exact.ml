module Digraph = Rr_graph.Digraph
module Layered = Rr_wdm.Layered

exception Budget_exceeded

(* DFS enumeration of node-simple s-t paths over the residual network. *)
let enumerate_simple_paths ?(max_paths = 50_000) net ~source ~target =
  let g = Rr_wdm.Network.graph net in
  let n = Digraph.n_nodes g in
  let visited = Array.make n false in
  let acc = ref [] in
  let count = ref 0 in
  let rec dfs v path =
    if v = target then begin
      incr count;
      if !count > max_paths then raise Budget_exceeded;
      acc := List.rev path :: !acc
    end
    else begin
      visited.(v) <- true;
      Array.iter
        (fun e ->
          if Rr_wdm.Network.has_available net e then begin
            let u = Digraph.dst g e in
            if not visited.(u) then dfs u (e :: path)
          end)
        (Digraph.out_edges g v);
      visited.(v) <- false
    end
  in
  dfs source [];
  List.rev !acc

let route ?max_paths net ~source ~target =
  if source = target then invalid_arg "Exact.route: source = target";
  let paths = enumerate_simple_paths ?max_paths net ~source ~target in
  (* Optimal per-path assignment; paths with no feasible wavelength chain
     cannot appear in any solution and are dropped. *)
  let assigned =
    List.filter_map
      (fun links ->
        match Layered.assign_on_path net links with
        | Some (slp, c) ->
          let mask = Hashtbl.create 8 in
          List.iter (fun e -> Hashtbl.replace mask e ()) links;
          Some (c, slp, mask)
        | None -> None)
      paths
  in
  let arr =
    Array.of_list
      (List.sort (fun (c1, _, _) (c2, _, _) -> Float.compare c1 c2) assigned)
  in
  let np = Array.length arr in
  let disjoint (_, _, m1) (_, _, m2) =
    (* lint: ordered — conjunction over members, order-insensitive *)
    Hashtbl.fold (fun e () acc -> acc && not (Hashtbl.mem m1 e)) m2 true
  in
  (* Paths are cost-sorted, so for a fixed [i] the first disjoint [j > i]
     closes the best pair involving [i]; and once [2·cᵢ] reaches the
     incumbent no later pair can improve. *)
  let best = ref infinity in
  let best_pair = ref None in
  let rec outer i =
    if i < np then begin
      let (ci, _, _) as pi = arr.(i) in
      if 2.0 *. ci < !best then begin
        let rec inner j =
          if j < np then begin
            let (cj, _, _) as pj = arr.(j) in
            if ci +. cj < !best then
              if disjoint pi pj then begin
                best := ci +. cj;
                best_pair := Some (pi, pj)
              end
              else inner (j + 1)
          end
        in
        inner (i + 1);
        outer (i + 1)
      end
    end
  in
  outer 0;
  match !best_pair with
  | None -> None
  | Some ((c1, sl1, _), (c2, sl2, _)) ->
    let primary, backup = if c1 <= c2 then (sl1, sl2) else (sl2, sl1) in
    Some ({ Types.primary; backup = Some backup }, !best)

let optimal_cost ?max_paths net ~source ~target =
  Option.map snd (route ?max_paths net ~source ~target)

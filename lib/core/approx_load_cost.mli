(** Section 4.2 — minimising network load *and* routing cost.

    Phase 1 fixes a feasible load threshold [ϑ] with
    {!Mincog.route}; phase 2 rebuilds the threshold-filtered auxiliary
    graph with cost weights ([G_rc]), runs Suurballe, and refines the two
    induced subgraphs into optimal semilightpaths.  This is the paper's
    headline "simultaneous" algorithm: among the lightly-loaded part of the
    network it picks the cheapest robust route. *)

type result = {
  theta : float;       (** threshold accepted in phase 1 *)
  bottleneck : float;  (** max link load along the phase-2 pair *)
  solution : Types.solution;
}

val route :
  ?aux_cache:Rr_wdm.Aux_cache.t ->
  ?base:float ->
  ?resolution:int ->
  ?workspace:Rr_util.Workspace.t ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  result option

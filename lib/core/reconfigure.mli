(** Network reconfiguration: re-routing live connections to relieve the
    maximum link load.

    The paper's premise (Section 1) is that operators periodically freeze
    the network and re-balance routes when congestion concentrates — an
    expensive event whose *frequency* the Section 4 algorithms aim to
    reduce.  This module implements the reconfiguration itself, so the
    trade-off is measurable: admit with a cost-only policy and you need
    more of these moves later; admit load-aware and you need fewer.

    Greedy local search: repeatedly pick a connection crossing a
    maximally-loaded link, release it, re-route it with the load-aware
    policy, and keep the move iff the network load strictly drops (ties
    broken by total wavelength pressure on bottleneck links).  Moves are
    atomic — a failed re-route restores the original allocation. *)

type move = {
  conn : int;
  before : Types.solution;
  after : Types.solution;
}

type outcome = {
  moves : move list;          (** applied, in order *)
  initial_load : float;
  final_load : float;
  attempted : int;            (** re-route attempts, including rejected *)
}

val reduce_load :
  ?max_moves:int ->
  Rr_wdm.Network.t ->
  (int * Types.solution) list ->
  outcome
(** [reduce_load net conns] — [conns] must be currently allocated in
    [net]; the list and the network are updated consistently: after the
    call the network reflects the returned moves (callers apply the same
    moves to their own connection table).  Default [max_moves] 50. *)

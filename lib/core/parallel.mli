(** A minimal fixed-size domain pool (OCaml 5 [Domain]s, stdlib only).

    Built for {!Batch.route_parallel}: the read-only routing phase of a
    batch is embarrassingly parallel, so a handful of long-lived worker
    domains pull request indices from a shared atomic counter.  Spawning a
    domain costs milliseconds, which is why the pool is created once and
    reused across batches rather than per call.

    A pool of size [j] uses the calling domain as worker 0 and [j - 1]
    spawned domains; [jobs = 1] therefore spawns nothing and runs inline.
    Pools are not re-entrant: {!run}/{!map} from two domains, or from
    inside a running job, is a programming error. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [jobs] workers ([jobs - 1] domains).  Raises
    [Invalid_argument] when [jobs < 1]. *)

val size : t -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run : t -> (int -> unit) -> unit
(** [run pool f] executes [f i] once per worker [i] (0 inclusive to
    [size - 1]), concurrently, and returns when all have finished.  If any
    worker raises, one of the raised exceptions is re-raised here (after
    all workers finish). *)

val map : t -> worker:(int -> 'w) -> f:('w -> 'a -> 'b) -> 'a array -> 'b array
(** [map pool ~worker ~f arr] evaluates [f st arr.(i)] for every index,
    distributing indices over workers via an atomic counter
    (work-stealing, no pre-partitioning, so uneven item costs balance).
    [worker i] builds each worker's private state [st] once per call —
    e.g. a network snapshot plus a {!Rr_util.Workspace.t}, which must not
    be shared across domains. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  The pool must be idle.
    Idempotent; the pool is unusable afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run the callback, always [shutdown]. *)

(** A minimal fixed-size domain pool (OCaml 5 [Domain]s, stdlib only).

    Built for {!Batch.route_parallel}: the read-only routing phase of a
    batch is embarrassingly parallel, so a handful of long-lived worker
    domains pull request chunks from per-worker work-stealing deques.
    Spawning a domain costs milliseconds and building a routing shard
    (network snapshot + auxiliary-graph cache) costs more, which is why
    the pool is created once and reused across batches — and why it
    carries typed per-worker state slots (see {!slot}) so engines can
    park shards inside the pool between calls.

    A pool of size [j] uses the calling domain as worker 0 and [j - 1]
    spawned domains; [jobs = 1] therefore spawns nothing and runs inline.
    Pools are not re-entrant: {!run}/{!map} from two domains, or from
    inside a running job, is a programming error.

    {b Sizing.}  Requesting more workers than
    [Domain.recommended_domain_count ()] oversubscribes the machine: the
    extra domains time-share cores, adding scheduling noise without
    adding throughput.  {!create} therefore clamps [jobs] to the
    recommended count by default and records the rejection on the
    [parallel.oversubscribed] counter, so the clamp is observable rather
    than silent.  Pass [~oversubscribe:true] to opt out (tests use this
    to exercise multi-domain scheduling on small machines).  Because the
    clamp depends on the host, [parallel.*] counters are excluded from
    cross-[jobs] determinism comparisons (see [obs.mli]). *)

type t

val create : ?obs:Rr_obs.Obs.t -> ?oversubscribe:bool -> jobs:int -> unit -> t
(** Spawn a pool of [jobs] workers ([jobs - 1] domains).  Raises
    [Invalid_argument] when [jobs < 1].  When [jobs] exceeds
    [Domain.recommended_domain_count ()] and [oversubscribe] is [false]
    (the default), the pool is sized to the recommended count instead and
    [parallel.oversubscribed] is bumped on [obs]. *)

val size : t -> int
(** Actual worker count (after any clamp). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], read once and memoized: the
    default width and the oversubscription clamp in {!create} must agree
    on a single stable machine width for the process lifetime. *)

val default_jobs : unit -> int
(** [min 8 (recommended_jobs ())] — the recommended count clamped to a
    sane ceiling: batch speculation stops scaling usefully past the
    request-level parallelism of typical batches, and very wide pools
    multiply shard-resident memory. *)

val run : t -> (int -> unit) -> unit
(** [run pool f] executes [f i] once per worker [i] (0 inclusive to
    [size - 1]), concurrently, and returns when all have finished.  If any
    worker raises, one of the raised exceptions is re-raised here (after
    all workers finish). *)

val map :
  ?chunk:int -> t -> worker:(int -> 'w) -> f:('w -> 'a -> 'b) -> 'a array ->
  'b array
(** [map pool ~worker ~f arr] evaluates [f st arr.(i)] for every index
    and returns the results in index order.  The array is pre-split into
    one contiguous range per worker; each worker consumes its own range
    from the front [chunk] (default 1) items at a time, and a worker that
    runs dry steals the back half of another worker's remaining range —
    so stragglers (e.g. expensive no-disjoint-pair searches) don't leave
    the rest of the pool idle, while items of similar cost mostly run in
    cache-friendly contiguous runs.  [worker i] builds each worker's
    private state [st] once per call — e.g. a network snapshot plus a
    {!Rr_util.Workspace.t}, which must not be shared across domains.
    Which worker evaluates which index is scheduling-dependent; callers
    must keep [f] free of cross-item effects (the batch engine's phase A
    is read-only against per-worker shards for exactly this reason). *)

(** {1 Typed per-worker state}

    A ['a slot] names one per-worker, per-pool storage cell, so engine
    code can keep expensive worker state (snapshots, caches, scratch
    arenas) alive across {!map} calls on the same pool.  Slots are
    created once at module level; the pool stores the values.  Access is
    only safe from the owning worker while it runs (inside {!run}/{!map})
    or from the calling domain while the pool is idle. *)

type 'a slot

val slot : unit -> 'a slot
(** A fresh slot, distinct from every other slot (of any type). *)

val get_state : t -> 'a slot -> worker:int -> 'a option
(** The value last stored for [worker] in this slot, if any. *)

val set_state : t -> 'a slot -> worker:int -> 'a -> unit
(** Store a value for [worker]; replaces any previous value. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  The pool must be idle.
    Idempotent; the pool is unusable afterwards.  Worker state slots are
    dropped with the pool. *)

val with_pool :
  ?obs:Rr_obs.Obs.t -> ?oversubscribe:bool -> jobs:int -> (t -> 'a) -> 'a
(** [create], run the callback, always [shutdown]. *)

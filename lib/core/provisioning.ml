module Net = Rr_wdm.Network
module Slp = Rr_wdm.Semilightpath
module Bitset = Rr_util.Bitset

type objective = Min_total_cost | Min_load_then_cost

type placement = {
  request : Types.request;
  solution : Types.solution option;
}

type plan = {
  placements : placement list;
  served : int;
  total_cost : float;
  network_load : float;
  iterations : int;
}

let plan_of net placements iterations =
  let served = List.length (List.filter (fun p -> Option.is_some p.solution) placements) in
  let total_cost =
    List.fold_left
      (fun acc p ->
        match p.solution with Some s -> acc +. Types.total_cost net s | None -> acc)
      0.0 placements
  in
  { placements; served; total_cost; network_load = Net.network_load net; iterations }

let sequential_on net ?(order = Batch.Fifo) ?(policy = Router.Cost_approx) requests =
  let r = Batch.process ~order net policy requests in
  List.map
    (fun o -> { request = o.Batch.request; solution = o.Batch.solution })
    r.Batch.outcomes

let sequential ?order ?policy net0 requests =
  let net = Net.copy net0 in
  let placements = sequential_on net ?order ?policy requests in
  plan_of net placements 0

(* Objective comparison: more served demands always dominates; then the
   chosen figure of merit, strictly. *)
let better objective (served, load, cost) (served', load', cost') =
  if served' <> served then served' > served
  else
    match objective with
    | Min_total_cost -> cost' < cost -. 1e-9
    | Min_load_then_cost ->
      load' < load -. 1e-9 || (load' <= load +. 1e-9 && cost' < cost -. 1e-9)

let local_search ?order ?(policy = Router.Cost_approx)
    ?(objective = Min_total_cost) ?(max_rounds = 20) net0 requests =
  let net = Net.copy net0 in
  let placements = Array.of_list (sequential_on net ?order ~policy requests) in
  (* Single-demand re-insertion cannot improve the cost objective (each
     demand already got the cheapest route available at a less loaded
     moment), so the moves are pairwise ruin-and-recreate: tear two
     demands down and re-insert them in both orders.  Re-insertion uses
     the load-aware policy when the objective asks for load. *)
  let reroute_policy =
    match objective with
    | Min_total_cost -> policy
    | Min_load_then_cost -> Router.Load_cost
  in
  let score () =
    let served =
      Array.fold_left (fun a p -> if Option.is_some p.solution then a + 1 else a) 0 placements
    in
    let cost =
      Array.fold_left
        (fun a p ->
          match p.solution with Some s -> a +. Types.total_cost net s | None -> a)
        0.0 placements
    in
    (served, Net.network_load net, cost)
  in
  let apply i sol =
    (match placements.(i).solution with Some s -> Types.release net s | None -> ());
    (match sol with Some s -> Types.allocate net s | None -> ());
    placements.(i) <- { placements.(i) with solution = sol }
  in
  let route_one i =
    let req = placements.(i).request in
    match Router.route net reroute_policy ~source:req.Types.src ~target:req.Types.dst with
    | Some s when Result.is_ok (Types.validate net req s) -> Some s
    | _ -> None
  in
  let n = Array.length placements in
  let iterations = ref 0 in
  let rounds = ref 0 in
  let improved = ref true in
  while !improved && !rounds < max_rounds do
    improved := false;
    incr rounds;
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if not !improved then begin
          let current = score () in
          let saved_i = placements.(i).solution in
          let saved_j = placements.(j).solution in
          (* try both reinsertion orders, keep the better outcome *)
          let attempt first second =
            apply i None;
            apply j None;
            let a, b = if first = i then (i, j) else (j, i) in
            ignore second;
            apply a (route_one a);
            apply b (route_one b);
            score ()
          in
          let restore () =
            apply i None;
            apply j None;
            apply i saved_i;
            apply j saved_j
          in
          let s_ij = attempt i j in
          let keep_ij = better objective current s_ij in
          if keep_ij then begin
            incr iterations;
            improved := true
          end
          else begin
            restore ();
            let s_ji = attempt j i in
            if better objective current s_ji then begin
              incr iterations;
              improved := true
            end
            else restore ()
          end
        end
      done
    done
  done;
  plan_of net (Array.to_list placements) !iterations

(* Joint exact program for two demands: a family per path (x1/y1/x2/y2),
   per-request path + conversion + disjointness constraints, and shared
   per-(link, wavelength) capacity. *)
let ilp_joint ?node_limit net r1 r2 =
  let ilp = Rr_ilp.Ilp.create () in
  let fams =
    List.map
      (fun (prefix, req) ->
        let fam = Ilp_exact.build_family ilp net ~prefix in
        Ilp_exact.add_path_constraints ilp net fam ~source:req.Types.src
          ~target:req.Types.dst;
        Ilp_exact.add_conversion_constraints ilp net fam ~prefix;
        (prefix, req, fam))
      [ ("x1", r1); ("y1", r1); ("x2", r2); ("y2", r2) ]
  in
  let fam_of p = List.find (fun (prefix, _, _) -> String.equal prefix p) fams in
  let _, _, x1 = fam_of "x1" and _, _, y1 = fam_of "y1" in
  let _, _, x2 = fam_of "x2" and _, _, y2 = fam_of "y2" in
  (* per-request edge-disjointness (paper's (16)) *)
  let add_link_exclusion fa fb =
    for e = 0 to Net.n_links net - 1 do
      let terms =
        Bitset.fold
          (fun l acc ->
            let t1 = Option.map (fun v -> (v, 1.0)) (Ilp_exact.var fa e l) in
            let t2 = Option.map (fun v -> (v, 1.0)) (Ilp_exact.var fb e l) in
            List.filter_map Fun.id [ t1; t2 ] @ acc)
          (Net.available net e) []
      in
      if not (List.is_empty terms) then Rr_ilp.Ilp.add_le ilp terms 1.0
    done
  in
  add_link_exclusion x1 y1;
  add_link_exclusion x2 y2;
  (* shared capacity: each (link, λ) carries at most one of the four paths *)
  for e = 0 to Net.n_links net - 1 do
    Bitset.iter
      (fun l ->
        let terms =
          List.filter_map
            (fun (_, _, fam) -> Option.map (fun v -> (v, 1.0)) (Ilp_exact.var fam e l))
            fams
        in
        if List.length terms > 1 then Rr_ilp.Ilp.add_le ilp terms 1.0)
      (Net.available net e)
  done;
  match Rr_ilp.Ilp.solve ?node_limit ilp with
  | None -> None
  | Some { Rr_ilp.Ilp.objective; values; _ } ->
    let decode fam req =
      Ilp_exact.decode net fam values ~source:req.Types.src ~target:req.Types.dst
    in
    (match (decode x1 r1, decode y1 r1, decode x2 r2, decode y2 r2) with
     | Some p1, Some b1, Some p2, Some b2 ->
       let mk p b =
         let cp = Slp.cost net p and cb = Slp.cost net b in
         if cp <= cb then { Types.primary = p; backup = Some b }
         else { Types.primary = b; backup = Some p }
       in
       Some ((mk p1 b1, mk p2 b2), objective)
     | _ -> failwith "Provisioning.ilp_joint: solution decoding failed")

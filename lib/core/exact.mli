(** Exact minimum-cost edge-disjoint semilightpath pairs (combinatorial).

    Ground truth for the Theorem 2 ratio experiments.  Because the two
    paths share no physical link, the joint wavelength assignment
    decomposes: the optimum equals the minimum over edge-disjoint pairs of
    *node-simple* physical paths of the per-path optimal assignments
    (Viterbi DP over wavelengths, {!Rr_wdm.Layered.assign_on_path}).

    Node-simplicity matches the paper's own integer program (constraints 5
    and 6 admit at most one incoming and outgoing link per node), so this
    solver computes exactly the quantity the paper calls optimal.  The
    search enumerates simple paths in increasing assigned-cost order with
    branch-and-bound pruning; it is exponential in the worst case and meant
    for the small instances of the ratio experiments. *)

exception Budget_exceeded

val route :
  ?max_paths:int ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  (Types.solution * float) option
(** Optimal pair and its total cost.  [max_paths] (default [50_000]) bounds
    the number of simple physical paths enumerated; {!Budget_exceeded} is
    raised when the instance is too large to certify optimality. *)

val optimal_cost :
  ?max_paths:int ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  float option

val enumerate_simple_paths :
  ?max_paths:int ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  int list list
(** All node-simple physical paths (edge-id lists) — exposed for tests. *)

(** Section 4.1 — two edge-disjoint semilightpaths minimising the network
    load ([Find_Two_Paths_MinCog]).

    Candidate load thresholds [ϑ] range over
    [ϑ_min = min_e (U(e)+1)/N(e)] to [ϑ_max = max_e (U(e)+1)/N(e)].  The
    published pseudo-code's index arithmetic is internally inconsistent
    (decrementing [j] grows [Δ/2ʲ] without bound); we implement the search
    it evidently intends — geometrically growing increments above [ϑ_min]:
    try [ϑ_min], then [ϑ_min + Δ/2ᵏ] for [k = K, K−1, …, 0] and accept the
    first feasible threshold — which is what yields Theorem 3's factor-3
    guarantee.  {!min_bottleneck} computes the true optimum (smallest
    achievable maximum link load over the chosen pair) by binary search on
    the realised load levels, as the reference for the THM-3 ratio
    experiment. *)

type result = {
  theta : float;              (** the accepted threshold *)
  bottleneck : float;         (** max link load ρ(e) over both chosen paths *)
  solution : Types.solution;
}

val route :
  ?aux_cache:Rr_wdm.Aux_cache.t ->
  ?base:float ->
  ?resolution:int ->
  ?workspace:Rr_util.Workspace.t ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  result option
(** The paper's algorithm with the exponential congestion weights
    [a^((U+1)/N) − a^(U/N)] ([base] = a, default 16; [resolution] = K,
    default 10).  [None] when even [ϑ_max] admits no pair.  [aux_cache]
    syncs once per call and serves every threshold probe from the shared
    superset graph (byte-identical results). *)

val min_bottleneck :
  ?aux_cache:Rr_wdm.Aux_cache.t ->
  ?workspace:Rr_util.Workspace.t ->
  Rr_wdm.Network.t ->
  source:int ->
  target:int ->
  (float * Types.solution) option
(** Exact minimum of the pair's maximum link load, with a witness pair. *)

val theta_bounds : Rr_wdm.Network.t -> float * float
(** (ϑ_min, ϑ_max) over links still in the residual network. *)

(** Periodic batch admission (Section 2).

    "The network accepts user connection requests periodically.  At a given
    time interval, suppose a set of requests is given.  The algorithm
    processes these requests one by one.  Once a request is processed and
    there is a solution for it, the algorithm establishes the routes for it
    immediately.  Otherwise, the request is dropped."

    Because each admission consumes wavelengths, the *order* in which a
    batch is processed changes which later requests fit; this module
    implements the paper's sequential discipline plus standard orderings
    to quantify that effect. *)

type order =
  | Fifo            (** as given — the paper's discipline *)
  | Shortest_first  (** ascending hop distance (cheap requests first) *)
  | Longest_first   (** descending hop distance *)
  | Random of int   (** seeded shuffle *)

type outcome = {
  request : Types.request;
  solution : Types.solution option;  (** [None] = dropped *)
}

type result = {
  outcomes : outcome list;  (** in processing order *)
  admitted : int;
  dropped : int;
  total_cost : float;       (** over admitted requests *)
  final_load : float;       (** network load after the batch *)
}

val process :
  ?order:order ->
  Rr_wdm.Network.t ->
  Router.policy ->
  Types.request list ->
  result
(** Routes and allocates each request in turn on the live network (the
    network is mutated, as in operation).  Invalid requests
    ([src = dst] or out of range) are dropped rather than raising. *)

val order_name : order -> string

val arrange :
  Rr_wdm.Network.t -> order -> Types.request list -> Types.request list
(** The processing order {!process} would use, without admitting anything
    (hop distances are measured on the current residual network). *)

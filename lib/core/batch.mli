(** Periodic batch admission (Section 2).

    "The network accepts user connection requests periodically.  At a given
    time interval, suppose a set of requests is given.  The algorithm
    processes these requests one by one.  Once a request is processed and
    there is a solution for it, the algorithm establishes the routes for it
    immediately.  Otherwise, the request is dropped."

    Because each admission consumes wavelengths, the *order* in which a
    batch is processed changes which later requests fit; this module
    implements the paper's sequential discipline plus standard orderings
    to quantify that effect. *)

type order =
  | Fifo            (** as given — the paper's discipline *)
  | Shortest_first  (** ascending hop distance (cheap requests first) *)
  | Longest_first   (** descending hop distance *)
  | Random of int   (** seeded shuffle *)

type outcome = {
  request : Types.request;
  solution : Types.solution option;  (** [None] = dropped *)
}

type result = {
  outcomes : outcome list;  (** in processing order *)
  admitted : int;
  dropped : int;
  total_cost : float;       (** over admitted requests *)
  final_load : float;       (** network load after the batch *)
}

val process :
  ?order:order ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  Router.policy ->
  Types.request list ->
  result
(** Routes and allocates each request in turn on the live network (the
    network is mutated, as in operation).  Invalid requests
    ([src = dst] or out of range) are dropped rather than raising. *)

val order_name : order -> string

val arrange :
  Rr_wdm.Network.t -> order -> Types.request list -> Types.request list
(** The processing order {!process} would use, without admitting anything
    (hop distances are measured on the current residual network, with one
    BFS per distinct source). *)

val route :
  ?order:order ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  Router.policy ->
  Types.request list ->
  result
(** Speculative two-phase batch discipline.  Phase A routes every request
    read-only against a snapshot of the network at batch entry; phase B
    commits them in order on the live network, re-validating each
    speculative solution and recomputing it only when an earlier admission
    invalidated it.  Requests with no route against the snapshot are
    dropped without a retry (admissions only consume resources).  Differs
    from {!process} when a request's best route *changes* due to an
    earlier admission without becoming invalid — {!process} sees the
    updated residual network for every request, {!route} only for the
    recomputed ones.

    Phase B is implemented as an optimistic grouped commit with exact
    in-order semantics: each round shadow-validates the remaining batch
    against the live state plus the hops virtually taken by earlier
    still-valid solutions, commits the maximal valid prefix (grouped into
    link-disjoint conflict components), and handles the first failing
    index with the literal sequential step (re-route on the live
    network).  The admitted set, every solution, every cost and the final
    residual state are identical to a plain sequential walk.  Commit
    activity is observable via the [batch.conflict.*] counters and the
    [stage.commit] span. *)

val route_parallel :
  ?order:order ->
  ?pool:Parallel.t ->
  ?jobs:int ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  Router.policy ->
  Types.request list ->
  result
(** {!route} with phase A fanned out over a {!Parallel} domain pool and
    phase B's link-disjoint conflict components committed concurrently;
    both phases preserve the sequential semantics exactly, so the result
    is byte-identical to {!route} for every [jobs].  Pass [pool] to reuse
    long-lived workers across batches ([jobs] is then ignored); otherwise
    a pool of [jobs] (default {!Parallel.default_jobs}, clamped as
    {!Parallel.create} documents) is created for the call.

    {b Shard reuse.}  Each worker's speculation state — private network
    snapshot, incremental {!Rr_wdm.Aux_cache} engine, workspace — lives
    in the pool's typed state slots and survives across calls.  Passing
    the same [pool] and the same live network again only replays the
    residual-state delta onto each shard (per-link bitset diff plus an
    incremental cache sync) instead of re-copying the network and
    rebuilding the auxiliary graph per call; a pool last used against a
    different network rebuilds its shards transparently.  Routing against
    a resynced shard is byte-identical to routing against a fresh
    snapshot (the {!Rr_wdm.Aux_cache} identity contract).

    With [?obs], each phase-A worker records into a private fork of the
    context ([tid] = worker index + 1) and the forks are merged back in
    worker order at the join — all merges are integer sums/maxes, so
    counter totals are deterministic and equal to a sequential {!route}
    run's regardless of [jobs].  (Exception: [parallel.oversubscribed]
    records a host-dependent clamp and is excluded from cross-[jobs]
    comparisons.) *)

module Net = Rr_wdm.Network
module Slp = Rr_wdm.Semilightpath
module Obs = Rr_obs.Obs

type outcome =
  | Switched of Slp.t * Partial_protect.protection
  | Rerouted of Slp.t * Partial_protect.protection
  | Dropped

let path_intact net p =
  List.for_all (fun e -> not (Net.is_failed net e)) (Slp.links p)

(* A fresh full backup for the promoted working path: cheapest
   semilightpath avoiding every link of the working path.  The layered
   search minimises over walks, so link-repeating candidates are screened
   out (see [Semilightpath.link_simple]). *)
let reprovision_backup ?workspace ~obs net primary =
  let primary_links = Hashtbl.create 8 in
  List.iter (fun e -> Hashtbl.replace primary_links e ()) (Slp.links primary);
  let link_enabled e = not (Hashtbl.mem primary_links e) in
  match
    Rr_wdm.Layered.optimal ?workspace net ~link_enabled ~obs
      ~source:(Slp.source net primary) ~target:(Slp.target net primary)
  with
  | Some (b, _) when Slp.link_simple b ->
    Slp.allocate net b;
    Some b
  | Some _ | None -> None

let restore ?aux_cache ?workspace ?(obs = Obs.null) ?req ?(reprovision = false)
    net policy ~request ~primary ~protection =
  Obs.add obs "restore.attempt" 1;
  let { Types.src; dst } = request in
  let switched working =
    let protection =
      if reprovision then begin
        match reprovision_backup ?workspace ~obs net working with
        | Some fresh ->
          Obs.add obs "restore.reprovision" 1;
          Obs.event obs ~a:src ~b:dst "journal.restore.reprovision";
          Partial_protect.Full fresh
        | None -> Partial_protect.Unprotected
      end
      else Partial_protect.Unprotected
    in
    Obs.add obs "restore.ok" 1;
    Obs.add obs "restore.switch" 1;
    Obs.event obs ~a:src ~b:dst "journal.restore.switch";
    Switched (working, protection)
  in
  let reroute () =
    match
      Router.admit ?aux_cache ?workspace ~obs ?req net policy ~source:src
        ~target:dst
    with
    | Some fresh ->
      Obs.add obs "restore.ok" 1;
      Obs.add obs "restore.reroute" 1;
      Obs.event obs ~a:src ~b:dst "journal.restore.reroute";
      let protection =
        match fresh.Types.backup with
        | Some b -> Partial_protect.Full b
        | None -> Partial_protect.Unprotected
      in
      Rerouted (fresh.Types.primary, protection)
    | None ->
      Obs.add obs "restore.dropped" 1;
      Obs.event obs ~a:src ~b:dst "journal.restore.drop";
      Dropped
  in
  match protection with
  | Partial_protect.Full b when path_intact net b ->
    (* Active restoration: instant switch to the reserved backup; the
       dead primary's resources are returned. *)
    Slp.release net primary;
    switched b
  | Partial_protect.Segments segs -> (
    match Partial_protect.restore_segments ~obs net ~primary ~segments:segs with
    | Some spliced -> switched spliced
    | None ->
      (* Failure pattern not coverable by one segment: give everything
         back and re-route from scratch on the residual network. *)
      Slp.release net primary;
      List.iter
        (fun s -> Slp.release net s.Partial_protect.seg_detour)
        segs;
      reroute ())
  | Partial_protect.Full b ->
    (* Backup also broken: give everything back and re-route. *)
    Slp.release net primary;
    Slp.release net b;
    reroute ()
  | Partial_protect.Unprotected ->
    Slp.release net primary;
    reroute ()

type policy =
  | Cost_approx
  | Load_aware
  | Load_cost
  | Two_step
  | First_fit
  | Most_used
  | Least_used
  | Unprotected
  | Node_protect
  | Exact

let all_policies =
  [
    Cost_approx; Load_aware; Load_cost; Two_step; First_fit; Most_used;
    Least_used; Unprotected; Node_protect; Exact;
  ]

let policy_name = function
  | Cost_approx -> "cost-approx"
  | Load_aware -> "load-aware"
  | Load_cost -> "load-cost"
  | Two_step -> "two-step"
  | First_fit -> "first-fit"
  | Most_used -> "most-used"
  | Least_used -> "least-used"
  | Unprotected -> "unprotected"
  | Node_protect -> "node-protect"
  | Exact -> "exact"

let policy_of_string s =
  List.find_opt (fun p -> String.equal (policy_name p) s) all_policies

module Obs = Rr_obs.Obs

let route ?aux_cache ?workspace ?(obs = Obs.null) net policy ~source ~target =
  let result =
    match policy with
    | Cost_approx ->
      Approx_cost.route ?aux_cache ?workspace ~obs net ~source ~target
    | Load_aware ->
      Option.map
        (fun r -> r.Mincog.solution)
        (Mincog.route ?aux_cache ?workspace ~obs net ~source ~target)
    | Load_cost ->
      Option.map
        (fun r -> r.Approx_load_cost.solution)
        (Approx_load_cost.route ?aux_cache ?workspace ~obs net ~source ~target)
    | Two_step -> Baselines.two_step ?workspace ~obs net ~source ~target
    | First_fit -> Baselines.first_fit ?workspace ~obs net ~source ~target
    | Most_used -> Baselines.most_used_fit ?workspace ~obs net ~source ~target
    | Least_used -> Baselines.least_used_fit ?workspace ~obs net ~source ~target
    | Unprotected -> Baselines.unprotected ?workspace ~obs net ~source ~target
    | Node_protect -> Node_protect.route ?workspace ~obs net ~source ~target
    | Exact ->
      (* The exact enumerative solver has no Dijkstra-shaped scratch state. *)
      ignore workspace;
      Option.map fst (Exact.route net ~source ~target)
  in
  (* The pipeline policies count their own blocking causes above; the
     baselines and the exact solver block as one opaque step. *)
  (match (result, policy) with
   | None, (Two_step | First_fit | Most_used | Least_used | Unprotected | Exact)
     ->
     Obs.add obs "route.block.no_route" 1
   | _ -> ());
  result

(* Journal payload codes for [journal.admit.blocked]: which blocking
   cause fired.  Detected by diffing the [route.block.*] counters around
   the route call — cheap (three hash lookups per enabled admission) and
   it keeps the cause attribution consistent with the counters. *)
let cause_no_disjoint_pair = 1
let cause_no_wavelength = 2
let cause_no_route = 3
let cause_validator = 4

let admit ?aux_cache ?workspace ?(obs = Obs.null) ?req net policy ~source
    ~target =
  (match req with Some id -> Obs.set_request obs id | None -> ());
  let t_admit = Obs.start obs in
  let live = Obs.enabled obs in
  let m = Obs.metrics obs in
  let module M = Rr_obs.Metrics in
  let b_pair = if live then M.counter m "route.block.no_disjoint_pair" else 0 in
  let b_wave = if live then M.counter m "route.block.no_wavelength" else 0 in
  let b_route = if live then M.counter m "route.block.no_route" else 0 in
  let finish result =
    Obs.stop_admit obs t_admit;
    (match req with Some _ -> Obs.clear_request obs | None -> ());
    result
  in
  match route ?aux_cache ?workspace ~obs net policy ~source ~target with
  | None ->
    Obs.add obs "admit.blocked" 1;
    if live then begin
      let cause =
        if M.counter m "route.block.no_disjoint_pair" > b_pair then
          cause_no_disjoint_pair
        else if M.counter m "route.block.no_wavelength" > b_wave then
          cause_no_wavelength
        else if M.counter m "route.block.no_route" > b_route then
          cause_no_route
        else 0
      in
      Obs.event obs ~a:cause "journal.admit.blocked"
    end;
    finish None
  | Some sol -> (
    let t0 = Obs.start obs in
    let verdict = Types.validate net { Types.src = source; dst = target } sol in
    Obs.stop obs "stage.validate" t0;
    match verdict with
    | Error e ->
      (* A policy handed us a path the model rejects.  Historically this
         was a [failwith]; counting it as a blocked request keeps the
         simulator alive and makes the defect observable as a non-zero
         [admit.reject.validator] (zero under the shipped policies — the
         layered arrival/departure split plus the link-simplicity screens
         close the known classes). *)
      ignore e;
      Obs.add obs "admit.reject.validator" 1;
      Obs.add obs "admit.blocked" 1;
      Obs.event obs ~a:cause_validator "journal.admit.blocked";
      Obs.anomaly obs "validator-reject";
      finish None
    | Ok () ->
      let t0 = Obs.start obs in
      Types.allocate net sol;
      Obs.stop obs "stage.allocate" t0;
      Obs.add obs "admit.ok" 1;
      Obs.event obs ~a:source ~b:target "journal.admit.ok";
      finish (Some sol))

(* The (link, wavelength) hops a solution would allocate, primary first
   then backup, in hop order.  Within one solution every physical link
   appears at most once (link simplicity plus edge-disjointness), so the
   list is duplicate-free in its link component — the batch engine's
   conflict grouping relies on this. *)
let footprint (sol : Types.solution) =
  let module Slp = Rr_wdm.Semilightpath in
  let hops p = List.map (fun h -> (h.Slp.edge, h.Slp.lambda)) p.Slp.hops in
  hops sol.Types.primary
  @ (match sol.Types.backup with None -> [] | Some b -> hops b)

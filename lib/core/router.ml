type policy =
  | Cost_approx
  | Load_aware
  | Load_cost
  | Two_step
  | First_fit
  | Most_used
  | Least_used
  | Unprotected
  | Node_protect
  | Exact

let all_policies =
  [
    Cost_approx; Load_aware; Load_cost; Two_step; First_fit; Most_used;
    Least_used; Unprotected; Node_protect; Exact;
  ]

let policy_name = function
  | Cost_approx -> "cost-approx"
  | Load_aware -> "load-aware"
  | Load_cost -> "load-cost"
  | Two_step -> "two-step"
  | First_fit -> "first-fit"
  | Most_used -> "most-used"
  | Least_used -> "least-used"
  | Unprotected -> "unprotected"
  | Node_protect -> "node-protect"
  | Exact -> "exact"

let policy_of_string s =
  List.find_opt (fun p -> policy_name p = s) all_policies

let route ?workspace net policy ~source ~target =
  match policy with
  | Cost_approx -> Approx_cost.route ?workspace net ~source ~target
  | Load_aware ->
    Option.map
      (fun r -> r.Mincog.solution)
      (Mincog.route ?workspace net ~source ~target)
  | Load_cost ->
    Option.map
      (fun r -> r.Approx_load_cost.solution)
      (Approx_load_cost.route ?workspace net ~source ~target)
  | Two_step -> Baselines.two_step ?workspace net ~source ~target
  | First_fit -> Baselines.first_fit ?workspace net ~source ~target
  | Most_used -> Baselines.most_used_fit ?workspace net ~source ~target
  | Least_used -> Baselines.least_used_fit ?workspace net ~source ~target
  | Unprotected -> Baselines.unprotected ?workspace net ~source ~target
  | Node_protect -> Node_protect.route ?workspace net ~source ~target
  | Exact ->
    (* The exact enumerative solver has no Dijkstra-shaped scratch state. *)
    ignore workspace;
    Option.map fst (Exact.route net ~source ~target)

let admit ?workspace net policy ~source ~target =
  match route ?workspace net policy ~source ~target with
  | None -> None
  | Some sol -> (
    match Types.validate net { Types.src = source; dst = target } sol with
    | Error e ->
      failwith
        (Printf.sprintf "Router.admit: policy %s produced invalid solution: %s"
           (policy_name policy) e)
    | Ok () ->
      Types.allocate net sol;
      Some sol)

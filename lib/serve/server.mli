(** The daemon's socket layer: a single-threaded [select] loop over
    loopback TCP, one {!Protocol.Framer} per client, and a bounded
    admission queue per pump round.

    All protocol and routing semantics live in {!Core} — this module only
    moves bytes: it reads ready clients, collects the round's frames in
    arrival order, hands the decoded requests to {!Core.handle_round}
    (which applies the queue bound and answers the overflow [Busy]), and
    writes the replies back non-blockingly, preserving per-client
    response order even when immediate decode errors interleave with
    queued requests.

    When [http_port] is given, a second listener serves [/metrics] and
    [/healthz] from the core's {!Rr_obs.Obs} registry (via
    {!Rr_obs.Obs_http.handle}) inside the same loop. *)

type t

val default_queue_capacity : int
(** 64 requests per pump round. *)

val create :
  ?queue_capacity:int ->
  ?max_frame:int ->
  ?http_port:int ->
  port:int ->
  Core.t ->
  t
(** Bind [127.0.0.1:port] ([0] picks an ephemeral port — read it back
    with {!port}).  Raises [Invalid_argument] if [queue_capacity < 1],
    [Unix.Unix_error] on bind failure. *)

val port : t -> int
val http_port : t -> int option
val core : t -> Core.t

val pump : ?timeout:float -> t -> unit
(** One event-loop round: select (default 50 ms), accept, read, handle,
    write.  Exposed for in-process tests that interleave client and
    server deterministically. *)

val run : ?timeout:float -> t -> unit
(** {!pump} until a [shutdown] request lands, then drain pending replies
    and close every socket.  Returns normally — the CLI exits 0. *)

val shutdown : t -> unit
(** Close all sockets immediately (without waiting for [shutdown] on the
    wire). *)

module Router = Robust_routing.Router

type request =
  | Ping
  | Admit of { src : int; dst : int; policy : Router.policy option }
  | Release of { id : int }
  | Fail_link of { link : int }
  | Repair_link of { link : int }
  | Fail_burst of { links : int list }
  | Repair_burst of { links : int list }
  | Query
  | Snapshot
  | Restore of { state : string }
  | Shutdown

type stats = {
  st_nodes : int;
  st_links : int;
  st_wavelengths : int;
  st_connections : int;
  st_in_use : int;
  st_load : float;
  st_failed_links : int list;
  st_admitted_total : int;
  st_blocked_total : int;
}

type error_kind =
  | Bad_frame
  | Bad_json
  | Unknown_op
  | Bad_request
  | Unknown_id
  | Bad_state
  | Busy

type response =
  | Pong
  | Admitted of { id : int; cost : float }
  | Blocked of { cause : string }
  | Released of { id : int }
  | Link_failed of { link : int }
  | Link_repaired of { link : int }
  | Burst_failed of { links : int list; switched : int; rerouted : int; dropped : int }
  | Burst_repaired of { links : int list }
  | Stats of stats
  | Snapshot_state of { state : string }
  | Restored of { connections : int }
  | Bye
  | Error of { kind : error_kind; msg : string }

let error_kind_name = function
  | Bad_frame -> "bad_frame"
  | Bad_json -> "bad_json"
  | Unknown_op -> "unknown_op"
  | Bad_request -> "bad_request"
  | Unknown_id -> "unknown_id"
  | Bad_state -> "bad_state"
  | Busy -> "busy"

let error_kind_of_name s =
  match s with
  | "bad_frame" -> Some Bad_frame
  | "bad_json" -> Some Bad_json
  | "unknown_op" -> Some Unknown_op
  | "bad_request" -> Some Bad_request
  | "unknown_id" -> Some Unknown_id
  | "bad_state" -> Some Bad_state
  | "busy" -> Some Busy
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Encoding: one canonical JSON text per value.                         *)

let encode_request r =
  Json.to_string
    (match r with
     | Ping -> Json.Obj [ ("op", Json.String "ping") ]
     | Admit { src; dst; policy } ->
       Json.Obj
         ([ ("op", Json.String "admit"); ("src", Json.Int src); ("dst", Json.Int dst) ]
         @
         match policy with
         | None -> []
         | Some p -> [ ("policy", Json.String (Router.policy_name p)) ])
     | Release { id } -> Json.Obj [ ("op", Json.String "release"); ("id", Json.Int id) ]
     | Fail_link { link } ->
       Json.Obj [ ("op", Json.String "fail"); ("link", Json.Int link) ]
     | Repair_link { link } ->
       Json.Obj [ ("op", Json.String "repair"); ("link", Json.Int link) ]
     | Fail_burst { links } ->
       Json.Obj
         [
           ("op", Json.String "fail_burst");
           ("links", Json.List (List.map (fun e -> Json.Int e) links));
         ]
     | Repair_burst { links } ->
       Json.Obj
         [
           ("op", Json.String "repair_burst");
           ("links", Json.List (List.map (fun e -> Json.Int e) links));
         ]
     | Query -> Json.Obj [ ("op", Json.String "query") ]
     | Snapshot -> Json.Obj [ ("op", Json.String "snapshot") ]
     | Restore { state } ->
       Json.Obj [ ("op", Json.String "restore"); ("state", Json.String state) ]
     | Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ])

let encode_response r =
  Json.to_string
    (match r with
     | Pong -> Json.Obj [ ("ok", Json.String "pong") ]
     | Admitted { id; cost } ->
       Json.Obj
         [ ("ok", Json.String "admitted"); ("id", Json.Int id); ("cost", Json.Float cost) ]
     | Blocked { cause } ->
       Json.Obj [ ("ok", Json.String "blocked"); ("cause", Json.String cause) ]
     | Released { id } ->
       Json.Obj [ ("ok", Json.String "released"); ("id", Json.Int id) ]
     | Link_failed { link } ->
       Json.Obj [ ("ok", Json.String "failed"); ("link", Json.Int link) ]
     | Link_repaired { link } ->
       Json.Obj [ ("ok", Json.String "repaired"); ("link", Json.Int link) ]
     | Burst_failed { links; switched; rerouted; dropped } ->
       Json.Obj
         [
           ("ok", Json.String "burst_failed");
           ("links", Json.List (List.map (fun e -> Json.Int e) links));
           ("switched", Json.Int switched);
           ("rerouted", Json.Int rerouted);
           ("dropped", Json.Int dropped);
         ]
     | Burst_repaired { links } ->
       Json.Obj
         [
           ("ok", Json.String "burst_repaired");
           ("links", Json.List (List.map (fun e -> Json.Int e) links));
         ]
     | Stats s ->
       Json.Obj
         [
           ("ok", Json.String "stats");
           ("nodes", Json.Int s.st_nodes);
           ("links", Json.Int s.st_links);
           ("wavelengths", Json.Int s.st_wavelengths);
           ("connections", Json.Int s.st_connections);
           ("in_use", Json.Int s.st_in_use);
           ("load", Json.Float s.st_load);
           ("failed_links", Json.List (List.map (fun e -> Json.Int e) s.st_failed_links));
           ("admitted_total", Json.Int s.st_admitted_total);
           ("blocked_total", Json.Int s.st_blocked_total);
         ]
     | Snapshot_state { state } ->
       Json.Obj [ ("ok", Json.String "snapshot"); ("state", Json.String state) ]
     | Restored { connections } ->
       Json.Obj [ ("ok", Json.String "restored"); ("connections", Json.Int connections) ]
     | Bye -> Json.Obj [ ("ok", Json.String "bye") ]
     | Error { kind; msg } ->
       Json.Obj
         [ ("error", Json.String (error_kind_name kind)); ("msg", Json.String msg) ])

(* ------------------------------------------------------------------ *)
(* Decoding: malformed input maps to a typed [Error], never an           *)
(* exception.                                                            *)

(* [response]'s [Error] constructor shadows [result]'s; the annotations
   below keep the decoder bodies on the stdlib constructors. *)

let field_int j name : (int, string) result =
  match Json.member name j with
  | Some v -> (
    match Json.to_int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "field %S must be an integer" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let field_str j name : (string, string) result =
  match Json.member name j with
  | Some v -> (
    match Json.to_str v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "field %S must be a string" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let ( let* ) r f =
  match r with Result.Ok v -> f v | Result.Error e -> Result.Error e

let field_int_list j name : (int list, string) result =
  match Json.member name j with
  | Some (Json.List xs) ->
    List.fold_left
      (fun (acc : (int list, string) result) x ->
        let* acc = acc in
        match Json.to_int x with
        | Some i -> Result.Ok (i :: acc)
        | None -> Result.Error (Printf.sprintf "%s must hold integers" name))
      (Result.Ok []) xs
    |> Result.map List.rev
  | Some _ | None ->
    Result.Error (Printf.sprintf "missing or malformed %S" name)

let decode_request text =
  match Json.of_string text with
  | Error m -> Result.Error (Bad_json, m)
  | Ok j -> (
    let req : (request, string) result =
      match Json.member "op" j with
      | None -> Error "missing field \"op\""
      | Some op -> (
        match Json.to_str op with
        | None -> Error "field \"op\" must be a string"
        | Some "ping" -> Ok Ping
        | Some "admit" ->
          let* src = field_int j "src" in
          let* dst = field_int j "dst" in
          let* policy =
            match Json.member "policy" j with
            | None -> Ok None
            | Some v -> (
              match Json.to_str v with
              | None -> Error "field \"policy\" must be a string"
              | Some name -> (
                match Router.policy_of_string name with
                | Some p -> Ok (Some p)
                | None -> Error (Printf.sprintf "unknown policy %S" name)))
          in
          Ok (Admit { src; dst; policy })
        | Some "release" ->
          let* id = field_int j "id" in
          Ok (Release { id })
        | Some "fail" ->
          let* link = field_int j "link" in
          Ok (Fail_link { link })
        | Some "repair" ->
          let* link = field_int j "link" in
          Ok (Repair_link { link })
        | Some "fail_burst" ->
          let* links = field_int_list j "links" in
          Ok (Fail_burst { links })
        | Some "repair_burst" ->
          let* links = field_int_list j "links" in
          Ok (Repair_burst { links })
        | Some "query" -> Ok Query
        | Some "snapshot" -> Ok Snapshot
        | Some "restore" ->
          let* state = field_str j "state" in
          Ok (Restore { state })
        | Some "shutdown" -> Ok Shutdown
        | Some other -> Error (Printf.sprintf "unknown op %S" other))
    in
    match req with
    | Ok r -> Result.Ok r
    | Error m -> (
      (* An unknown op is its own error kind; everything else about a
         well-formed JSON object is a bad request. *)
      match Json.member "op" j with
      | Some (Json.String op)
        when not
               (List.exists (String.equal op)
                  [
                    "ping"; "admit"; "release"; "fail"; "repair";
                    "fail_burst"; "repair_burst"; "query"; "snapshot";
                    "restore"; "shutdown";
                  ]) ->
        Result.Error (Unknown_op, m)
      | _ -> Result.Error (Bad_request, m)))

let decode_response text =
  match Json.of_string text with
  | Error m -> Result.Error m
  | Ok j -> (
    match Json.member "error" j with
    | Some v -> (
      match Json.to_str v with
      | None -> Result.Error "field \"error\" must be a string"
      | Some kind_s -> (
        match error_kind_of_name kind_s with
        | None -> Result.Error (Printf.sprintf "unknown error kind %S" kind_s)
        | Some kind -> (
          match field_str j "msg" with
          | Ok msg -> Result.Ok (Error { kind; msg })
          | Error m -> Result.Error m)))
    | None -> (
      let r : (response, string) result =
        match Json.member "ok" j with
        | None -> Error "missing field \"ok\""
        | Some ok -> (
          match Json.to_str ok with
          | None -> Error "field \"ok\" must be a string"
          | Some "pong" -> Ok Pong
          | Some "admitted" ->
            let* id = field_int j "id" in
            let* cost =
              match Json.member "cost" j with
              | Some v -> (
                match Json.to_float v with
                | Some f -> Ok f
                | None -> Error "field \"cost\" must be a number")
              | None -> Error "missing field \"cost\""
            in
            Ok (Admitted { id; cost })
          | Some "blocked" ->
            let* cause = field_str j "cause" in
            Ok (Blocked { cause })
          | Some "released" ->
            let* id = field_int j "id" in
            Ok (Released { id })
          | Some "failed" ->
            let* link = field_int j "link" in
            Ok (Link_failed { link })
          | Some "repaired" ->
            let* link = field_int j "link" in
            Ok (Link_repaired { link })
          | Some "burst_failed" ->
            let* links = field_int_list j "links" in
            let* switched = field_int j "switched" in
            let* rerouted = field_int j "rerouted" in
            let* dropped = field_int j "dropped" in
            Ok (Burst_failed { links; switched; rerouted; dropped })
          | Some "burst_repaired" ->
            let* links = field_int_list j "links" in
            Ok (Burst_repaired { links })
          | Some "stats" ->
            let* st_nodes = field_int j "nodes" in
            let* st_links = field_int j "links" in
            let* st_wavelengths = field_int j "wavelengths" in
            let* st_connections = field_int j "connections" in
            let* st_in_use = field_int j "in_use" in
            let* st_load =
              match Json.member "load" j with
              | Some v -> (
                match Json.to_float v with
                | Some f -> Ok f
                | None -> Error "field \"load\" must be a number")
              | None -> Error "missing field \"load\""
            in
            let* st_failed_links = field_int_list j "failed_links" in
            let* st_admitted_total = field_int j "admitted_total" in
            let* st_blocked_total = field_int j "blocked_total" in
            Ok
              (Stats
                 {
                   st_nodes; st_links; st_wavelengths; st_connections;
                   st_in_use; st_load; st_failed_links; st_admitted_total;
                   st_blocked_total;
                 })
          | Some "snapshot" ->
            let* state = field_str j "state" in
            Ok (Snapshot_state { state })
          | Some "restored" ->
            let* connections = field_int j "connections" in
            Ok (Restored { connections })
          | Some "bye" -> Ok Bye
          | Some other -> Error (Printf.sprintf "unknown ok tag %S" other))
      in
      match r with Ok v -> Result.Ok v | Error m -> Result.Error m))

(* ------------------------------------------------------------------ *)
(* Framing: "<decimal payload length>\n<payload>".                      *)

let max_frame_default = 16 * 1024 * 1024

let frame payload = string_of_int (String.length payload) ^ "\n" ^ payload

type frame_error =
  | Bad_prefix of string
  | Frame_too_large of int

let frame_error_message = function
  | Bad_prefix s -> Printf.sprintf "malformed length prefix %S" s
  | Frame_too_large n -> Printf.sprintf "frame of %d bytes exceeds the limit" n

module Framer = struct
  type t = {
    mutable buf : Buffer.t;
    max_frame : int;
    mutable dead : frame_error option;
  }

  let create ?(max_frame = max_frame_default) () =
    { buf = Buffer.create 256; max_frame; dead = None }

  let feed t s = if t.dead = None then Buffer.add_string t.buf s

  (* The prefix may only hold digits; anything else poisons the stream
     (framing can't resync after garbage). *)
  let next t : (string, frame_error) result option =
    match t.dead with
    | Some e -> Some (Error e)
    | None -> (
      let data = Buffer.contents t.buf in
      match String.index_opt data '\n' with
      | None ->
        let bad =
          String.exists
            (fun c -> not (c >= '0' && c <= '9'))
            data
        in
        if bad || String.length data > 20 then begin
          t.dead <- Some (Bad_prefix data);
          Some (Error (Bad_prefix data))
        end
        else None
      | Some nl -> (
        let prefix = String.sub data 0 nl in
        let digits_only =
          (not (String.equal prefix ""))
          && String.for_all (fun c -> c >= '0' && c <= '9') prefix
        in
        match (if digits_only then int_of_string_opt prefix else None) with
        | None ->
          t.dead <- Some (Bad_prefix prefix);
          Some (Error (Bad_prefix prefix))
        | Some len when len > t.max_frame ->
          t.dead <- Some (Frame_too_large len);
          Some (Error (Frame_too_large len))
        | Some len ->
          let avail = String.length data - nl - 1 in
          if avail < len then None
          else begin
            let payload = String.sub data (nl + 1) len in
            let rest = String.sub data (nl + 1 + len) (avail - len) in
            let nbuf = Buffer.create (max 256 (String.length rest)) in
            Buffer.add_string nbuf rest;
            t.buf <- nbuf;
            Some (Ok payload)
          end))

  let pending t = Buffer.length t.buf > 0 && t.dead = None
end

let decode_frames text =
  let f = Framer.create () in
  Framer.feed f text;
  let rec go (acc : (string, frame_error) result list) =
    match Framer.next f with
    | None -> List.rev acc
    | Some (Error e) -> List.rev (Result.Error e :: acc)
    | Some (Ok p) -> go (Result.Ok p :: acc)
  in
  go []

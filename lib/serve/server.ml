module Obs = Rr_obs.Obs
module Obs_http = Rr_obs.Obs_http

type client = {
  fd : Unix.file_descr;
  framer : Protocol.Framer.t;
  out : Buffer.t;
  mutable closing : bool;  (* close once [out] drains *)
}

type t = {
  core : Core.t;
  lsock : Unix.file_descr;
  http : Unix.file_descr option;
  queue_capacity : int;
  mutable clients : client list;
  rbuf : Bytes.t;
}

let default_queue_capacity = 64

let create ?(queue_capacity = default_queue_capacity) ?(max_frame = Protocol.max_frame_default)
    ?http_port ~port core =
  if queue_capacity < 1 then invalid_arg "Server.create: queue_capacity < 1";
  let lsock = Obs_http.listen ~port () in
  Unix.set_nonblock lsock;
  let http =
    Option.map
      (fun p ->
        let fd = Obs_http.listen ~port:p () in
        Unix.set_nonblock fd;
        fd)
      http_port
  in
  ignore max_frame;
  { core; lsock; http; queue_capacity; clients = []; rbuf = Bytes.create 4096 }

let core t = t.core
let port t = Obs_http.bound_port t.lsock
let http_port t = Option.map Obs_http.bound_port t.http

let metrics_page t () =
  Rr_obs.Export.prometheus (Obs.metrics (Core.obs t.core))

let close_client t c =
  t.clients <- List.filter (fun c' -> c' != c) t.clients;
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  Obs.gauge (Core.obs t.core) "serve.clients" (float_of_int (List.length t.clients))

let enqueue c payload = Buffer.add_string c.out (Protocol.frame payload)

(* One nonblocking write attempt; unsent bytes stay buffered. *)
let flush_client t c =
  let data = Buffer.contents c.out in
  let len = String.length data in
  if len > 0 then begin
    match Unix.write_substring c.fd data 0 len with
    | n ->
      Buffer.clear c.out;
      if n < len then Buffer.add_substring c.out data n (len - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> close_client t c
  end;
  if c.closing && Buffer.length c.out = 0 then close_client t c

let accept_clients t =
  let rec go () =
    match Unix.accept t.lsock with
    | fd, _ ->
      Unix.set_nonblock fd;
      t.clients <-
        t.clients
        @ [ { fd; framer = Protocol.Framer.create (); out = Buffer.create 256; closing = false } ];
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ();
  Obs.gauge (Core.obs t.core) "serve.clients" (float_of_int (List.length t.clients))

let serve_http_once t fd =
  match Unix.accept fd with
  | conn, _ -> (
    (* One small blocking exchange — a Prometheus scrape. *)
    Unix.clear_nonblock conn;
    Fun.protect
      ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
      (fun () ->
        let buf = Bytes.create 4096 in
        let n = try Unix.read conn buf 0 4096 with Unix.Unix_error _ -> 0 in
        if n > 0 then begin
          let resp = Obs_http.handle ~metrics:(metrics_page t) (Bytes.sub_string buf 0 n) in
          let _ =
            try Unix.write_substring conn resp 0 (String.length resp)
            with Unix.Unix_error _ -> 0
          in
          ()
        end))
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

(* Read every ready client and collect this round's work items in arrival
   order.  An item is either an already-encoded immediate reply (decode
   or framing error) or a decoded request; keeping both in one ordered
   list is what preserves per-client response order across the queue. *)
let read_round t ready =
  let obs = Core.obs t.core in
  let items = ref [] in
  List.iter
    (fun c ->
      if (not c.closing) && List.exists (fun fd -> fd == c.fd) ready then begin
        match Unix.read c.fd t.rbuf 0 (Bytes.length t.rbuf) with
        | 0 -> close_client t c
        | n ->
          Protocol.Framer.feed c.framer (Bytes.sub_string t.rbuf 0 n);
          let rec drain () =
            match Protocol.Framer.next c.framer with
            | None -> ()
            | Some (Error fe) ->
              Obs.add obs "serve.requests" 1;
              Obs.add obs "serve.errors" 1;
              let resp =
                Protocol.encode_response
                  (Protocol.Error
                     { kind = Protocol.Bad_frame; msg = Protocol.frame_error_message fe })
              in
              items := (c, `Imm resp) :: !items;
              (* Framing errors poison the stream: reply, then close. *)
              c.closing <- true
            | Some (Ok payload) ->
              (match Protocol.decode_request payload with
               | Ok req -> items := (c, `Req req) :: !items
               | Error (kind, msg) ->
                 Obs.add obs "serve.requests" 1;
                 Obs.add obs "serve.errors" 1;
                 items :=
                   (c, `Imm (Protocol.encode_response (Protocol.Error { kind; msg })))
                   :: !items);
              drain ()
          in
          drain ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_client t c
      end)
    t.clients;
  List.rev !items

let handle_items t items =
  let reqs = List.filter_map (function _, `Req r -> Some r | _, `Imm _ -> None) items in
  let resps = Core.handle_round t.core ~queue_capacity:t.queue_capacity reqs in
  let remaining = ref resps in
  List.iter
    (fun (c, item) ->
      match item with
      | `Imm payload -> enqueue c payload
      | `Req _ -> (
        match !remaining with
        | resp :: rest ->
          remaining := rest;
          enqueue c (Protocol.encode_response resp)
        | [] -> assert false))
    items

let pump ?(timeout = 0.05) t =
  let listen_fds = t.lsock :: (match t.http with Some h -> [ h ] | None -> []) in
  let read_fds = listen_fds @ List.map (fun c -> c.fd) t.clients in
  let write_fds =
    List.filter_map (fun c -> if Buffer.length c.out > 0 then Some c.fd else None) t.clients
  in
  let ready_r, ready_w, _ =
    try Unix.select read_fds write_fds [] timeout
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  if List.exists (fun fd -> fd == t.lsock) ready_r then accept_clients t;
  (match t.http with
   | Some h when List.exists (fun fd -> fd == h) ready_r -> serve_http_once t h
   | _ -> ());
  let items = read_round t ready_r in
  handle_items t items;
  List.iter
    (fun c ->
      if Buffer.length c.out > 0 || c.closing then
        if List.exists (fun fd -> fd == c.fd) ready_w || Buffer.length c.out > 0 then
          flush_client t c)
    t.clients

let shutdown t =
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.clients;
  t.clients <- [];
  (try Unix.close t.lsock with Unix.Unix_error _ -> ());
  match t.http with
  | Some h -> ( try Unix.close h with Unix.Unix_error _ -> ())
  | None -> ()

let run ?timeout t =
  (* Broken pipes surface as write errors, not signals. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  while not (Core.stopping t.core) do
    pump ?timeout t
  done;
  (* Drain goodbye replies before tearing the sockets down. *)
  let rounds = ref 0 in
  while
    !rounds < 50
    && List.exists (fun c -> Buffer.length c.out > 0) t.clients
  do
    incr rounds;
    List.iter (fun c -> flush_client t c) t.clients;
    if List.exists (fun c -> Buffer.length c.out > 0) t.clients then
      ignore (try Unix.select [] [] [] 0.01 with Unix.Unix_error _ -> ([], [], []))
  done;
  shutdown t

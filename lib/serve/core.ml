module Net = Rr_wdm.Network
module Router = Robust_routing.Router
module Types = Robust_routing.Types
module Restore = Robust_routing.Restore
module Protect = Robust_routing.Partial_protect
module Obs = Rr_obs.Obs
module Metrics = Rr_obs.Metrics

type t = {
  mutable net : Net.t;
  mutable aux_cache : Rr_wdm.Aux_cache.t;
  workspace : Rr_util.Workspace.t;
  obs : Obs.t;
  default_policy : Router.policy;
  conns : (int, Types.solution) Hashtbl.t;
  mutable next_id : int;
  mutable admitted_total : int;
  mutable blocked_total : int;
  mutable stopping : bool;
}

let create ?(policy = Router.Cost_approx) ?(obs = Obs.null) net =
  {
    net;
    aux_cache = Rr_wdm.Aux_cache.create net;
    workspace = Rr_util.Workspace.create ();
    obs;
    default_policy = policy;
    conns = Hashtbl.create 64;
    next_id = 0;
    admitted_total = 0;
    blocked_total = 0;
    stopping = false;
  }

let network t = t.net
let obs t = t.obs
let stopping t = t.stopping
let default_policy t = t.default_policy

let connections t =
  (* lint: ordered — folded to a list and sorted by id before use *)
  Hashtbl.fold (fun id sol acc -> (id, sol) :: acc) t.conns []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* ------------------------------------------------------------------ *)
(* Snapshot text: the Network_io state description plus one serve-level
   metadata comment, so a restored server resumes id assignment and its
   service counters exactly where the snapshot left them.               *)

let meta_prefix = "# rr-serve meta "

let snapshot t =
  let conns =
    List.map
      (fun (id, sol) -> (id, sol.Types.primary, sol.Types.backup))
      (connections t)
  in
  Rr_wdm.Network_io.print_snapshot t.net ~conns
  ^ Printf.sprintf "%snext_id=%d admitted=%d blocked=%d\n" meta_prefix
      t.next_id t.admitted_total t.blocked_total

let parse_meta text =
  let from_line line =
    let rest =
      String.sub line (String.length meta_prefix)
        (String.length line - String.length meta_prefix)
    in
    let kv tok =
      match String.split_on_char '=' tok with
      | [ k; v ] -> (
        match int_of_string_opt v with Some i -> Some (k, i) | None -> None)
      | _ -> None
    in
    let fields =
      String.split_on_char ' ' rest
      |> List.filter (fun s -> not (String.equal s ""))
      |> List.filter_map kv
    in
    let get k = List.assoc_opt k fields in
    match (get "next_id", get "admitted", get "blocked") with
    | Some n, Some a, Some b -> Some (n, a, b)
    | _ -> None
  in
  List.fold_left
    (fun acc line ->
      match acc with
      | Some _ -> acc
      | None ->
        if String.starts_with ~prefix:meta_prefix line then from_line line
        else None)
    None
    (String.split_on_char '\n' text)

let load_snapshot t text =
  match Rr_wdm.Network_io.parse_snapshot text with
  | Error m -> Error m
  | Ok { Rr_wdm.Network_io.snap_net; snap_conns } ->
    t.net <- snap_net;
    t.aux_cache <- Rr_wdm.Aux_cache.create snap_net;
    Hashtbl.reset t.conns;
    List.iter
      (fun (id, primary, backup) ->
        Hashtbl.replace t.conns id { Types.primary; backup })
      snap_conns;
    let max_id =
      List.fold_left (fun acc (id, _, _) -> max acc id) (-1) snap_conns
    in
    (match parse_meta text with
     | Some (next_id, admitted, blocked) ->
       t.next_id <- max next_id (max_id + 1);
       t.admitted_total <- admitted;
       t.blocked_total <- blocked
     | None ->
       t.next_id <- max_id + 1;
       t.admitted_total <- List.length snap_conns;
       t.blocked_total <- 0);
    Ok (List.length snap_conns)

let of_snapshot ?policy ?obs text =
  (* The throwaway 1-node network is replaced before the state escapes. *)
  let placeholder =
    Net.create ~n_nodes:2 ~n_wavelengths:1
      ~links:
        [ { Net.ls_src = 0; ls_dst = 1; ls_lambdas = [ 0 ]; ls_weight = (fun _ -> 1.0) } ]
      ~converters:(fun _ -> Rr_wdm.Conversion.Full 0.0)
  in
  let t = create ?policy ?obs placeholder in
  match load_snapshot t text with Ok _ -> Ok t | Error m -> Error m

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                     *)

let stats t =
  let failed = ref [] in
  for e = Net.n_links t.net - 1 downto 0 do
    if Net.is_failed t.net e then failed := e :: !failed
  done;
  {
    Protocol.st_nodes = Net.n_nodes t.net;
    st_links = Net.n_links t.net;
    st_wavelengths = Net.n_wavelengths t.net;
    st_connections = Hashtbl.length t.conns;
    st_in_use = Net.total_in_use t.net;
    st_load = Net.network_load t.net;
    st_failed_links = !failed;
    st_admitted_total = t.admitted_total;
    st_blocked_total = t.blocked_total;
  }

(* Blocking-cause attribution, same counter-diff trick as Router.admit's
   journal payload: three counter reads per blocked admission, and only
   when the context is live (cause reads "unknown" on a disabled one). *)
let blocked_cause t before_pair before_wave before_route before_val =
  if not (Obs.enabled t.obs) then "unknown"
  else begin
    let m = Obs.metrics t.obs in
    if Metrics.counter m "route.block.no_disjoint_pair" > before_pair then
      "no_disjoint_pair"
    else if Metrics.counter m "route.block.no_wavelength" > before_wave then
      "no_wavelength"
    else if Metrics.counter m "route.block.no_route" > before_route then
      "no_route"
    else if Metrics.counter m "admit.reject.validator" > before_val then
      "validator_reject"
    else "unknown"
  end

(* Burst pre-validation (links sorted/deduplicated by the caller): the
   whole list must be in range and in the expected failure state before
   any link is touched. *)
let validate_burst t ~want_failed links =
  let err kind fmt =
    Printf.ksprintf
      (fun msg ->
        Obs.add t.obs "serve.errors" 1;
        Result.Error (Protocol.Error { kind; msg }))
      fmt
  in
  match links with
  | [] -> err Protocol.Bad_request "empty burst"
  | _ ->
    let rec check = function
      | [] -> Result.Ok ()
      | e :: rest ->
        if e < 0 || e >= Net.n_links t.net then
          err Protocol.Bad_state "link %d out of range" e
        else if (not want_failed) && Net.is_failed t.net e then
          err Protocol.Bad_state "link %d already failed" e
        else if want_failed && not (Net.is_failed t.net e) then
          err Protocol.Bad_state "link %d is not failed" e
        else check rest
    in
    check links

let handle t (req : Protocol.request) : Protocol.response =
  let err kind fmt =
    Printf.ksprintf
      (fun msg ->
        Obs.add t.obs "serve.errors" 1;
        Protocol.Error { kind; msg })
      fmt
  in
  match req with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Shutdown ->
    t.stopping <- true;
    Protocol.Bye
  | Protocol.Query -> Protocol.Stats (stats t)
  | Protocol.Admit { src; dst; policy } ->
    let n = Net.n_nodes t.net in
    if src < 0 || src >= n || dst < 0 || dst >= n then
      err Protocol.Bad_request "node out of range in %d -> %d (n = %d)" src dst n
    else if src = dst then err Protocol.Bad_request "source equals destination (%d)" src
    else begin
      let policy = Option.value policy ~default:t.default_policy in
      let rid = t.next_id in
      t.next_id <- rid + 1;
      let live = Obs.enabled t.obs in
      let m = Obs.metrics t.obs in
      let b_pair = if live then Metrics.counter m "route.block.no_disjoint_pair" else 0 in
      let b_wave = if live then Metrics.counter m "route.block.no_wavelength" else 0 in
      let b_route = if live then Metrics.counter m "route.block.no_route" else 0 in
      let b_val = if live then Metrics.counter m "admit.reject.validator" else 0 in
      match
        Router.admit ~aux_cache:t.aux_cache ~workspace:t.workspace ~obs:t.obs
          ~req:rid t.net policy ~source:src ~target:dst
      with
      | Some sol ->
        Hashtbl.replace t.conns rid sol;
        t.admitted_total <- t.admitted_total + 1;
        Protocol.Admitted { id = rid; cost = Types.total_cost t.net sol }
      | None ->
        t.blocked_total <- t.blocked_total + 1;
        Protocol.Blocked { cause = blocked_cause t b_pair b_wave b_route b_val }
    end
  | Protocol.Release { id } -> (
    match Hashtbl.find_opt t.conns id with
    | None -> err Protocol.Unknown_id "no connection %d" id
    | Some sol ->
      Types.release t.net sol;
      Hashtbl.remove t.conns id;
      Protocol.Released { id })
  | Protocol.Fail_link { link } ->
    if link < 0 || link >= Net.n_links t.net then
      err Protocol.Bad_state "link %d out of range" link
    else if Net.is_failed t.net link then
      err Protocol.Bad_state "link %d already failed" link
    else begin
      Net.fail_link t.net link;
      Obs.event t.obs ~a:link "journal.link.fail";
      Protocol.Link_failed { link }
    end
  | Protocol.Repair_link { link } ->
    if link < 0 || link >= Net.n_links t.net then
      err Protocol.Bad_state "link %d out of range" link
    else if not (Net.is_failed t.net link) then
      err Protocol.Bad_state "link %d is not failed" link
    else begin
      Net.repair_link t.net link;
      Obs.event t.obs ~a:link "journal.link.repair";
      Protocol.Link_repaired { link }
    end
  | Protocol.Fail_burst { links } -> (
    (* All-or-nothing validation: a bad link rejects the whole burst with
       no state change, so the client never has to guess how much of a
       scenario was applied. *)
    let links = List.sort_uniq Int.compare links in
    match validate_burst t ~want_failed:false links with
    | Error resp -> resp
    | Ok () ->
      List.iter
        (fun link ->
          Net.fail_link t.net link;
          Obs.event t.obs ~a:link "journal.link.fail")
        links;
      (* Restoration order is part of the decision sequence (each
         re-route consumes residual wavelengths): process resident
         connections in admission order, through the shared engine. *)
      let switched = ref 0 and rerouted = ref 0 and dropped = ref 0 in
      List.iter
        (fun (id, sol) ->
          let hit =
            List.exists
              (fun e -> List.exists (Int.equal e) links)
              (Rr_wdm.Semilightpath.links sol.Types.primary)
          in
          if hit then begin
            let src = Rr_wdm.Semilightpath.source t.net sol.Types.primary in
            let dst = Rr_wdm.Semilightpath.target t.net sol.Types.primary in
            let protection =
              match sol.Types.backup with
              | Some b -> Protect.Full b
              | None -> Protect.Unprotected
            in
            let rid = t.next_id in
            t.next_id <- rid + 1;
            match
              Restore.restore ~aux_cache:t.aux_cache ~workspace:t.workspace
                ~obs:t.obs ~req:rid t.net t.default_policy
                ~request:{ Types.src; dst } ~primary:sol.Types.primary
                ~protection
            with
            | Restore.Switched (working, prot) ->
              incr switched;
              Hashtbl.replace t.conns id
                {
                  Types.primary = working;
                  backup =
                    (match prot with
                     | Protect.Full b -> Some b
                     | Protect.Unprotected | Protect.Segments _ -> None);
                }
            | Restore.Rerouted (working, prot) ->
              incr rerouted;
              Hashtbl.replace t.conns id
                {
                  Types.primary = working;
                  backup =
                    (match prot with
                     | Protect.Full b -> Some b
                     | Protect.Unprotected | Protect.Segments _ -> None);
                }
            | Restore.Dropped ->
              incr dropped;
              Hashtbl.remove t.conns id
          end)
        (connections t);
      Protocol.Burst_failed
        { links; switched = !switched; rerouted = !rerouted; dropped = !dropped })
  | Protocol.Repair_burst { links } -> (
    let links = List.sort_uniq Int.compare links in
    match validate_burst t ~want_failed:true links with
    | Error resp -> resp
    | Ok () ->
      List.iter
        (fun link ->
          Net.repair_link t.net link;
          Obs.event t.obs ~a:link "journal.link.repair")
        links;
      Protocol.Burst_repaired { links })
  | Protocol.Snapshot -> (
    match snapshot t with
    | state -> Protocol.Snapshot_state { state }
    | exception Invalid_argument msg -> err Protocol.Bad_state "%s" msg)
  | Protocol.Restore { state } -> (
    match load_snapshot t state with
    | Ok connections -> Protocol.Restored { connections }
    | Error msg -> err Protocol.Bad_state "%s" msg)

(* ------------------------------------------------------------------ *)
(* Frame- and round-level entry points                                  *)

let handle_frame t payload =
  Obs.add t.obs "serve.requests" 1;
  match Protocol.decode_request payload with
  | Ok req -> Protocol.encode_response (handle t req)
  | Error (kind, msg) ->
    Obs.add t.obs "serve.errors" 1;
    Protocol.encode_response (Protocol.Error { kind; msg })

let handle_round t ~queue_capacity reqs =
  if queue_capacity < 1 then invalid_arg "Core.handle_round: queue_capacity < 1";
  let queued = ref 0 in
  let rejected = ref 0 in
  (* Admission-or-busy is decided for the whole round up front (the queue
     is bounded at enqueue time), then the accepted prefix is processed
     in FIFO order — responses line up with requests positionally. *)
  let marked =
    List.map
      (fun req ->
        if !queued >= queue_capacity then begin
          incr rejected;
          None
        end
        else begin
          incr queued;
          Some req
        end)
      reqs
  in
  Obs.gauge t.obs "queue.depth" (float_of_int !queued);
  if !rejected > 0 then Obs.add t.obs "queue.rejected" !rejected;
  List.map
    (fun slot ->
      match slot with
      | Some req ->
        Obs.add t.obs "serve.requests" 1;
        handle t req
      | None ->
        Obs.add t.obs "serve.errors" 1;
        Protocol.Error
          { kind = Protocol.Busy; msg = "admission queue full — retry" })
    marked

module Rng = Rr_util.Rng
module Workload = Rr_sim.Workload
module Obs = Rr_obs.Obs

type op =
  | Op_admit of { src : int; dst : int }
  | Op_release of { admit : int }

(* ------------------------------------------------------------------ *)
(* Script generation: the simulator's traffic model (Poisson arrivals,
   exponential holding, uniform distinct pairs) flattened into a
   deterministic op sequence — arrivals and the departures they schedule
   merged in time order.  A function of (seed, n_nodes, requests, model)
   alone.                                                               *)

let script ~seed ~n_nodes ~requests model =
  if n_nodes < 2 then invalid_arg "Loadgen.script: n_nodes < 2";
  if requests < 0 then invalid_arg "Loadgen.script: requests < 0";
  let rng = Rng.create seed in
  let events = ref [] in
  let clock = ref 0.0 in
  for i = 0 to requests - 1 do
    clock := !clock +. Workload.interarrival rng model;
    let src, dst = Workload.random_pair rng ~n_nodes in
    let depart = !clock +. Workload.holding rng model in
    events := (!clock, (2 * i), Op_admit { src; dst }) :: !events;
    events := (depart, (2 * i) + 1, Op_release { admit = i }) :: !events
  done;
  List.sort
    (fun (t1, s1, _) (t2, s2, _) ->
      match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c)
    !events
  |> List.map (fun (_, _, op) -> op)
  |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Socket client                                                        *)

type report = {
  lg_requests : int;       (** admit ops sent *)
  lg_admitted : int;
  lg_blocked : int;
  lg_released : int;
  lg_errors : int;         (** protocol-level [Error] replies *)
  lg_latencies_ns : int array;  (** wire round-trip per admit, send order *)
  lg_outcomes : string array;   (** aligned with [lg_latencies_ns] *)
  lg_elapsed_ns : int;
}

let blocking_rate r =
  if r.lg_requests = 0 then 0.0
  else float_of_int r.lg_blocked /. float_of_int r.lg_requests

let quantile_ns r q =
  let n = Array.length r.lg_latencies_ns in
  if n = 0 then 0
  else begin
    let sorted = Array.copy r.lg_latencies_ns in
    Array.sort Int.compare sorted;
    let idx = int_of_float (q *. float_of_int n) in
    sorted.(max 0 (min (n - 1) idx))
  end

let throughput_rps r =
  if r.lg_elapsed_ns = 0 then 0.0
  else
    float_of_int (Array.length r.lg_latencies_ns)
    /. (float_of_int r.lg_elapsed_ns /. 1e9)

exception Protocol_failure of string

let connect ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e -> (try Unix.close sock with Unix.Unix_error _ -> ()); raise e);
  sock

(* Blocking lockstep RPC: one framed request out, one framed reply in. *)
let rpc sock framer req =
  let payload = Protocol.frame (Protocol.encode_request req) in
  let len = String.length payload in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write_substring sock payload !written (len - !written)
  done;
  let buf = Bytes.create 4096 in
  let rec await () =
    match Protocol.Framer.next framer with
    | Some (Ok reply) -> (
      match Protocol.decode_response reply with
      | Ok r -> r
      | Error m -> raise (Protocol_failure ("bad reply: " ^ m)))
    | Some (Error fe) -> raise (Protocol_failure (Protocol.frame_error_message fe))
    | None ->
      let n = Unix.read sock buf 0 (Bytes.length buf) in
      if n = 0 then raise (Protocol_failure "server closed the connection");
      Protocol.Framer.feed framer (Bytes.sub_string buf 0 n);
      await ()
  in
  await ()

let request ~port req =
  let sock = connect ~port in
  let framer = Protocol.Framer.create () in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () -> rpc sock framer req)

let query ~port =
  match request ~port Protocol.Query with
  | Protocol.Stats s -> s
  | _ -> raise (Protocol_failure "unexpected reply to query")

let run ?(shutdown = false) ~port ops =
  let sock = connect ~port in
  let framer = Protocol.Framer.create () in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      let n_admits =
        Array.fold_left
          (fun acc op -> match op with Op_admit _ -> acc + 1 | Op_release _ -> acc)
          0 ops
      in
      let ids = Array.make (max 1 n_admits) None in
      let latencies = Array.make (max 1 n_admits) 0 in
      let outcomes = Array.make (max 1 n_admits) "skipped" in
      let admitted = ref 0 and blocked = ref 0 and released = ref 0 and errors = ref 0 in
      let admit_i = ref 0 in
      let t_start = Obs.now_ns () in
      Array.iter
        (fun op ->
          match op with
          | Op_admit { src; dst } ->
            let i = !admit_i in
            incr admit_i;
            let t0 = Obs.now_ns () in
            let reply = rpc sock framer (Protocol.Admit { src; dst; policy = None }) in
            latencies.(i) <- Obs.now_ns () - t0;
            (match reply with
             | Protocol.Admitted { id; _ } ->
               ids.(i) <- Some id;
               incr admitted;
               outcomes.(i) <- "admitted"
             | Protocol.Blocked _ ->
               incr blocked;
               outcomes.(i) <- "blocked"
             | Protocol.Error { kind; _ } ->
               incr errors;
               outcomes.(i) <- Protocol.error_kind_name kind
             | _ -> raise (Protocol_failure "unexpected reply to admit"))
          | Op_release { admit } -> (
            match ids.(admit) with
            | None -> ()  (* blocked or errored admission: nothing to release *)
            | Some id -> (
              ids.(admit) <- None;
              match rpc sock framer (Protocol.Release { id }) with
              | Protocol.Released _ -> incr released
              | Protocol.Error _ -> incr errors
              | _ -> raise (Protocol_failure "unexpected reply to release"))))
        ops;
      let elapsed = Obs.now_ns () - t_start in
      if shutdown then begin
        match rpc sock framer Protocol.Shutdown with
        | Protocol.Bye -> ()
        | _ -> raise (Protocol_failure "unexpected reply to shutdown")
      end;
      {
        lg_requests = n_admits;
        lg_admitted = !admitted;
        lg_blocked = !blocked;
        lg_released = !released;
        lg_errors = !errors;
        lg_latencies_ns = (if n_admits = 0 then [||] else Array.sub latencies 0 n_admits);
        lg_outcomes = (if n_admits = 0 then [||] else Array.sub outcomes 0 n_admits);
        lg_elapsed_ns = elapsed;
      })

let csv r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "request,outcome,latency_ns\n";
  Array.iteri
    (fun i lat -> Buffer.add_string b (Printf.sprintf "%d,%s,%d\n" i r.lg_outcomes.(i) lat))
    r.lg_latencies_ns;
  Buffer.contents b

(* Minimal JSON: just enough for the rr_serve wire protocol, with a
   canonical printer (objects keep insertion order, floats via %.17g) so
   encode/decode round-trips are byte-identical and the golden tests can
   pin exact frames.  Hand-rolled to keep the daemon dependency-free. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ", ";
        add_json buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\": ";
        add_json buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 64 in
  add_json buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when Char.equal x ch -> advance c
  | Some x -> parse_error "expected %C at offset %d, got %C" ch c.pos x
  | None -> parse_error "expected %C, got end of input" ch

let parse_literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.text
    && String.equal (String.sub c.text c.pos n) word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "invalid literal at offset %d" c.pos

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> parse_error "unterminated escape"
      | Some e ->
        advance c;
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if c.pos + 4 > String.length c.text then
             parse_error "truncated \\u escape";
           let hex = String.sub c.text c.pos 4 in
           let code =
             match int_of_string_opt ("0x" ^ hex) with
             | Some v -> v
             | None -> parse_error "bad \\u escape %S" hex
           in
           c.pos <- c.pos + 4;
           (* The protocol only escapes control characters; decode the
              ASCII range and reject anything wider (no UTF-16 pairs). *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else parse_error "\\u escape beyond ASCII (%04x)" code
         | e -> parse_error "unknown escape \\%c" e);
        go ())
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
      advance c;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.text start (c.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> parse_error "bad number %S" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> parse_error "bad number %S" s

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws c;
        let key = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (key, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ()
        | Some '}' -> advance c
        | _ -> parse_error "expected ',' or '}' at offset %d" c.pos
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements ()
        | Some ']' -> advance c
        | _ -> parse_error "expected ',' or ']' at offset %d" c.pos
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_error "unexpected character %C at offset %d" ch c.pos

let of_string text =
  let c = { text; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos < String.length text then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)

let member key = function
  | Obj fields ->
    (* lint-free linear scan; wire objects are tiny *)
    List.fold_left
      (fun acc (k, v) ->
        match acc with Some _ -> acc | None -> if String.equal k key then Some v else None)
      None fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_str = function String s -> Some s | _ -> None

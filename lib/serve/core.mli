(** The daemon's pure request-handler core: resident routing state plus a
    [request -> response] dispatcher, with no sockets anywhere — the
    whole service semantics is unit-testable in-process (and fuzzed by
    rr_check case [serve]).

    A core keeps the network, an {!Rr_wdm.Aux_cache} and a workspace pool
    resident across requests, so the daemon serves admissions at the
    incremental-engine price, not the cold-rebuild price.  Both caches
    are result-invisible by the [Router.admit] contract (pinned by the
    existing aux-cache and obs fuzz cases), which is what makes the
    server-vs-library differential test meaningful. *)

type t

val create :
  ?policy:Robust_routing.Router.policy ->
  ?obs:Rr_obs.Obs.t ->
  Rr_wdm.Network.t ->
  t
(** [policy] (default [Cost_approx]) applies to [admit] requests that
    don't carry their own. *)

val handle : t -> Protocol.request -> Protocol.response
(** Dispatch one request.  Total: protocol-level misuse (unknown ids,
    out-of-range links, rejected restore text) returns [Error _]
    responses, never raises. *)

val handle_frame : t -> string -> string
(** Decoded-payload-in, encoded-response-out: [decode_request], then
    {!handle}, then [encode_response]; malformed payloads become encoded
    typed errors. *)

val handle_round : t -> queue_capacity:int -> Protocol.request list -> Protocol.response list
(** One pump round of the bounded admission queue: the first
    [queue_capacity] requests are enqueued and handled in FIFO order, the
    rest answered [Error Busy] — responses align positionally with
    requests.  Updates the [queue.depth] gauge and [queue.rejected]
    counter.  Raises [Invalid_argument] if [queue_capacity < 1]. *)

(** {1 Snapshots} *)

val snapshot : t -> string
(** {!Rr_wdm.Network_io.print_snapshot} text plus an [# rr-serve meta]
    comment carrying [next_id] and the admission counters, so a restore
    resumes id assignment exactly.  Raises [Invalid_argument] on
    networks {!Rr_wdm.Network_io.print} cannot serialise. *)

val load_snapshot : t -> string -> (int, string) result
(** Replace this core's state with the snapshot's; returns the number of
    restored connections. *)

val of_snapshot :
  ?policy:Robust_routing.Router.policy ->
  ?obs:Rr_obs.Obs.t ->
  string ->
  (t, string) result
(** Fresh core from snapshot text. *)

(** {1 Introspection} *)

val network : t -> Rr_wdm.Network.t
val obs : t -> Rr_obs.Obs.t
val default_policy : t -> Robust_routing.Router.policy

val stopping : t -> bool
(** Set once a [shutdown] request has been handled. *)

val connections : t -> (int * Robust_routing.Types.solution) list
(** Live connections, ascending by id. *)

val stats : t -> Protocol.stats

(** Socket-level load generator for the daemon.

    Traffic comes from the simulator's model ({!Rr_sim.Workload}):
    Poisson arrivals, exponential holding times, uniform distinct pairs —
    flattened into a deterministic op script (a pure function of the
    seed), then replayed over a real loopback connection in blocking
    lockstep, timing every admission round trip. *)

type op =
  | Op_admit of { src : int; dst : int }
  | Op_release of { admit : int }
      (** Release of the connection admitted by the [admit]-th [Op_admit]
          (skipped at run time if that admission was blocked). *)

val script :
  seed:int -> n_nodes:int -> requests:int -> Rr_sim.Workload.model -> op array
(** Arrivals and the departures they schedule, merged in time order.
    Deterministic. *)

type report = {
  lg_requests : int;       (** admit ops sent *)
  lg_admitted : int;
  lg_blocked : int;
  lg_released : int;
  lg_errors : int;         (** protocol-level [Error] replies *)
  lg_latencies_ns : int array;  (** wire round-trip per admit, send order *)
  lg_outcomes : string array;   (** aligned with [lg_latencies_ns] *)
  lg_elapsed_ns : int;
}

exception Protocol_failure of string
(** The server broke the protocol (closed mid-reply, wrong reply shape) —
    distinct from in-protocol [Error] replies, which are counted in
    [lg_errors]. *)

val request : port:int -> Protocol.request -> Protocol.response
(** One-shot RPC: connect to [127.0.0.1:port], send the request, return
    the typed reply, close.  The driver behind [rr admin] (burst
    fail/repair scenarios against a live daemon) and any other
    single-request administration. *)

val query : port:int -> Protocol.stats
(** One-off [query] round trip — how the CLI discovers the served
    network's node count before generating traffic. *)

val run : ?shutdown:bool -> port:int -> op array -> report
(** Connect to [127.0.0.1:port] and replay the script.  [shutdown] sends
    a final [shutdown] request (for CI teardown). *)

val blocking_rate : report -> float
val quantile_ns : report -> float -> int
(** Exact sorted quantile of the admit latencies; [quantile_ns r 0.5] is
    the p50, [quantile_ns r 0.99] the p99. *)

val throughput_rps : report -> float

val csv : report -> string
(** [request,outcome,latency_ns] rows — the CI artifact. *)

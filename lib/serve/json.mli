(** Minimal JSON for the rr_serve wire protocol.

    Hand-rolled (no external dependency) with a canonical printer: object
    fields keep insertion order, strings escape only what the grammar
    requires, integral floats print as [x.0] and other floats via
    [%.17g].  [of_string (to_string v)] is the identity, and for
    canonically-printed text [to_string] after [of_string] is
    byte-identical — the protocol golden tests rely on both. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val of_string : string -> (t, string) result
(** Strict: rejects trailing garbage, unterminated strings and non-ASCII
    [\u] escapes (the canonical printer never emits them). *)

val member : string -> t -> t option
(** First field of that name when the value is an object. *)

val to_int : t -> int option
val to_float : t -> float option
(** Accepts an [Int] too — [12] and [12.0] are the same wire number. *)

val to_str : t -> string option

(** The rr_serve wire protocol: typed requests/responses, canonical JSON
    codecs, and length-prefixed framing.

    Everything here is pure — the daemon's socket loop and the loadgen
    client are thin layers over these functions, so the whole protocol is
    unit-testable without sockets.

    {b Wire format.}  A frame is the decimal ASCII byte length of the
    payload, a newline, then the payload — a single JSON object.
    Requests carry an ["op"] tag ([ping], [admit], [release], [fail],
    [repair], [fail_burst], [repair_burst], [query], [snapshot],
    [restore], [shutdown]); responses
    either an ["ok"] tag or an ["error"] kind.  Encoding is canonical
    (fixed field order, [%.17g] floats), so encode/decode round-trips are
    byte-identical — pinned by the golden tests in [test_serve]. *)

type request =
  | Ping
  | Admit of { src : int; dst : int; policy : Robust_routing.Router.policy option }
      (** [policy] overrides the server's default for this request. *)
  | Release of { id : int }
  | Fail_link of { link : int }
      (** flips link state only — resident connections are untouched *)
  | Repair_link of { link : int }
  | Fail_burst of { links : int list }
      (** correlated failure scenario: fail every listed link atomically,
          then run restoration over the resident connections (switch to
          intact backups, re-route the rest, drop what cannot re-route).
          Validated as a unit: any bad link rejects the whole burst with
          no state change. *)
  | Repair_burst of { links : int list }
      (** repair every listed link atomically (same all-or-nothing
          validation). *)
  | Query
  | Snapshot
  | Restore of { state : string }
      (** [state] is {!Rr_wdm.Network_io.print_snapshot} text. *)
  | Shutdown

type stats = {
  st_nodes : int;
  st_links : int;
  st_wavelengths : int;
  st_connections : int;
  st_in_use : int;
  st_load : float;
  st_failed_links : int list;  (** ascending *)
  st_admitted_total : int;
  st_blocked_total : int;
}

type error_kind =
  | Bad_frame     (** malformed length prefix or oversized frame *)
  | Bad_json      (** payload is not valid JSON *)
  | Unknown_op    (** well-formed JSON, unrecognised ["op"] *)
  | Bad_request   (** recognised op with missing/ill-typed fields *)
  | Unknown_id    (** release of a connection the server doesn't hold *)
  | Bad_state     (** restore text rejected, or fail/repair out of range *)
  | Busy          (** bounded admission queue full — retry later *)

type response =
  | Pong
  | Admitted of { id : int; cost : float }
  | Blocked of { cause : string }
      (** Admission refused by the policy; [cause] is the [route.block.*]
          suffix ([no_disjoint_pair], [no_wavelength], [no_route]) or
          [validator_reject]/[unknown]. *)
  | Released of { id : int }
  | Link_failed of { link : int }
  | Link_repaired of { link : int }
  | Burst_failed of { links : int list; switched : int; rerouted : int; dropped : int }
      (** [links] echoed ascending; the three counters partition the
          resident connections whose working path the burst hit. *)
  | Burst_repaired of { links : int list }  (** [links] echoed ascending *)
  | Stats of stats
  | Snapshot_state of { state : string }
  | Restored of { connections : int }
  | Bye
  | Error of { kind : error_kind; msg : string }

val error_kind_name : error_kind -> string
val error_kind_of_name : string -> error_kind option

val encode_request : request -> string
val encode_response : response -> string

val decode_request : string -> (request, error_kind * string) result
(** Malformed payloads return a typed error, never an exception. *)

val decode_response : string -> (response, string) result

(** {1 Framing} *)

val max_frame_default : int
(** 16 MiB — bounds [restore] payloads. *)

val frame : string -> string
(** [frame payload] = ["<length>\n<payload>"]. *)

type frame_error =
  | Bad_prefix of string      (** non-digit bytes before the newline *)
  | Frame_too_large of int

val frame_error_message : frame_error -> string

(** Incremental frame decoder for a byte stream.  A framing error poisons
    the stream permanently (there is no way to resync after garbage) —
    the server answers with a [Bad_frame] error and closes. *)
module Framer : sig
  type t

  val create : ?max_frame:int -> unit -> t
  val feed : t -> string -> unit

  val next : t -> (string, frame_error) result option
  (** [None] — need more bytes.  After an [Error] every subsequent call
      returns the same error. *)

  val pending : t -> bool
  (** Unconsumed healthy bytes remain buffered. *)
end

val decode_frames : string -> (string, frame_error) result list
(** Split a complete byte string into frames (pure convenience over
    {!Framer}); a trailing partial frame is dropped, a framing error ends
    the list. *)

#!/usr/bin/env bash
# wait_ready.sh LOG PATTERN [TIMEOUT_SECONDS]
#
# Bounded readiness poll for a daemon that announces itself by writing
# PATTERN to LOG: polls every 100 ms until the pattern appears, and on
# timeout dumps the captured log to stderr and exits 1 so the CI step
# fails with the daemon's actual output instead of a bare grep error.
set -euo pipefail

log=${1:?usage: wait_ready.sh LOG PATTERN [TIMEOUT_SECONDS]}
pattern=${2:?usage: wait_ready.sh LOG PATTERN [TIMEOUT_SECONDS]}
timeout=${3:-30}

deadline=$(($(date +%s) + timeout))
until grep -q "$pattern" "$log" 2>/dev/null; do
  if [ "$(date +%s)" -ge "$deadline" ]; then
    echo "wait_ready: no '$pattern' in $log after ${timeout}s" >&2
    echo "--- $log ---" >&2
    cat "$log" >&2 2>/dev/null || echo "(log missing)" >&2
    exit 1
  fi
  sleep 0.1
done
